//! Reduced-precision host-side arithmetic: the **precision ladder**.
//!
//! MeLoPPR's co-design claim (§V) is that low-precision fixed-point
//! arithmetic buys memory and latency without hurting top-k precision.
//! This module carries that claim to the host path: every score a staged
//! query crunches can be held in one of three widths, selected per query
//! by a [`PrecisionClass`]:
//!
//! * [`PrecisionClass::Exact64`] — the reference `f64` pipeline
//!   (bit-identical to the pre-ladder behaviour).
//! * [`PrecisionClass::Fast32`] — `f32` scores: half the memory traffic
//!   of the dense diffusion arrays, with precision loss far below the
//!   top-k resolution on the paper's workloads.
//! * [`PrecisionClass::Fixed`]`(q)` — `u32` fixed-point with `q`
//!   fractional bits, sharing its multiply-shift semantics with the FPGA
//!   simulator (`meloppr_fpga::fixed_point` delegates to the
//!   [`fixed_coeff`]/[`mul_shift`]/[`mul_shift_round`] core defined
//!   here), so host and accelerator quantization agree by construction.
//!
//! Three pieces live here:
//!
//! 1. The [`ScoreScalar`] abstraction and the quantized diffusion kernel
//!    [`diffuse_quantized`] — a *dense, branchless* twin of
//!    [`diffuse_into`](crate::diffusion::diffuse_into). Where the exact
//!    kernel is frontier-sparse (worth it on huge views), ball diffusion
//!    saturates its frontier within a step or two, so the quantized
//!    kernel drops all frontier bookkeeping: flat arrays, no branch in
//!    the hot propagate loop, `chunks_exact` accumulation that
//!    auto-vectorizes. Results are decoded back into the caller's
//!    [`DiffusionScratch`], so everything downstream of a diffusion
//!    (Eq. 8 adjustment, selection, aggregation) is width-agnostic.
//! 2. [`CompactBall`] — a reduced-width cached-ball representation
//!    (`u16` local adjacency, no global→local map) at roughly **half**
//!    the bytes of a full [`Subgraph`], so a byte-budgeted cache admits
//!    ~2× more residents (see `cache::BallStore::Compact`).
//! 3. [`PrecisionClass`] itself: parseable from CLI/wire strings
//!    (`exact | f32 | qN`), with the conservative per-class precision
//!    and latency factors the staged `estimate()` and the router's
//!    admission ladder consume.

use meloppr_graph::{GraphView, NodeId, Subgraph};

use crate::diffusion::{DiffusionConfig, DiffusionScratch, DiffusionWork};
use crate::error::{PprError, Result};

// ---------------------------------------------------------------------------
// Shared Q-format core (host + FPGA)
// ---------------------------------------------------------------------------

/// Quantizes a coefficient `c ∈ [0, 1]` to `q` fractional bits:
/// `round(c · 2^q)`. This is the host-side twin of the FPGA's `alpha_p`
/// derivation; `meloppr_fpga::fixed_point` calls it so the two agree
/// by construction.
pub fn fixed_coeff(c: f64, q: u32) -> u64 {
    debug_assert!((0.0..=1.0).contains(&c), "coefficient out of [0,1]: {c}");
    (c * (1u64 << q) as f64).round() as u64
}

/// Truncating fixed-point multiply: `(x · m) >> q` — the FPGA datapath's
/// `mul_alpha` operation.
#[inline(always)]
pub fn mul_shift(x: u64, m: u64, q: u32) -> u64 {
    (x * m) >> q
}

/// Rounding fixed-point multiply: `(x · m + 2^(q-1)) >> q` — the FPGA
/// datapath's weighted-MAC rounding.
#[inline(always)]
pub fn mul_shift_round(x: u64, m: u64, q: u32) -> u64 {
    (x * m + (1u64 << (q - 1))) >> q
}

// ---------------------------------------------------------------------------
// PrecisionClass: the ladder
// ---------------------------------------------------------------------------

/// The fixed-point rung the admission ladder degrades to when no class
/// was requested: Q0.16 keeps `precision_at_k(200)` ≥ 0.95 on every
/// seed workload (asserted by the `precision_ladder` tests) while
/// halving score bytes.
pub const DEFAULT_FIXED_Q: u8 = 16;

/// A score-storage width for the host query path (the precision ladder).
///
/// Ordered from most to least precise: `Exact64 → Fast32 → Fixed(q)`.
/// Parse from CLI/wire strings via [`std::str::FromStr`]:
/// `"exact"`, `"f32"`, `"q16"` (any `q1..=q30`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecisionClass {
    /// Full `f64` scores — the reference pipeline.
    #[default]
    Exact64,
    /// `f32` scores: half the dense-array traffic.
    Fast32,
    /// `u32` fixed-point with this many fractional bits (1..=30),
    /// sharing multiply-shift semantics with the FPGA simulator.
    Fixed(u8),
}

impl PrecisionClass {
    /// Validates the class (fixed-point `q` must lie in `1..=30`).
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] for an out-of-range `q`.
    pub fn validate(self) -> Result<()> {
        if let PrecisionClass::Fixed(q) = self {
            if q == 0 || q > 30 {
                return Err(PprError::InvalidParams {
                    reason: format!("fixed-point q must be in 1..=30, got {q}"),
                });
            }
        }
        Ok(())
    }

    /// Bytes per score at this width (the memory model's diffusion-array
    /// word size): 8 for `Exact64`, 4 for `Fast32`/`Fixed`.
    pub fn score_width_bytes(self) -> usize {
        match self {
            PrecisionClass::Exact64 => 8,
            PrecisionClass::Fast32 | PrecisionClass::Fixed(_) => 4,
        }
    }

    /// Conservative multiplicative precision penalty of this class,
    /// applied to `estimate().expected_precision`. These are deliberate
    /// *under*-estimates of the measured `precision_at_k` on the seed
    /// graphs (the `precision_ladder` tests assert measured ≥ predicted
    /// for every class), so the router's `min_precision` gate never
    /// admits optimistically.
    pub fn precision_factor(self) -> f64 {
        match self {
            PrecisionClass::Exact64 => 1.0,
            PrecisionClass::Fast32 => 0.99,
            PrecisionClass::Fixed(q) => match q {
                20.. => 0.99,
                14..=19 => 0.95,
                10..=13 => 0.85,
                // Below 10 fractional bits whole tails of the ranking
                // collapse into ties; promise very little so the
                // min_precision gate routes these rungs away from any
                // fidelity-sensitive query.
                6..=9 => 0.30,
                _ => 0.05,
            },
        }
    }

    /// Relative cost of one diffusion edge-update at this width (1.0 =
    /// `f64`). Reduced widths halve the dense-array traffic and drop the
    /// frontier bookkeeping, which the fig5 ladder section measures at
    /// ≥ 1.2× on diffusion-dominated balls; 0.8 keeps the estimate
    /// conservative (never promises more speedup than measured).
    pub fn diffusion_cost_factor(self) -> f64 {
        match self {
            PrecisionClass::Exact64 => 1.0,
            PrecisionClass::Fast32 | PrecisionClass::Fixed(_) => 0.8,
        }
    }

    /// The next-cheaper rung of the ladder (`Exact64 → Fast32 →
    /// Fixed(DEFAULT_FIXED_Q) → None`): what deadline-tight admission
    /// degrades to before rejecting, mirroring how the staged engine
    /// shrinks ball depth only after the width ladder is exhausted.
    pub fn degraded(self) -> Option<PrecisionClass> {
        match self {
            PrecisionClass::Exact64 => Some(PrecisionClass::Fast32),
            PrecisionClass::Fast32 => Some(PrecisionClass::Fixed(DEFAULT_FIXED_Q)),
            PrecisionClass::Fixed(_) => None,
        }
    }
}

impl std::fmt::Display for PrecisionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PrecisionClass::Exact64 => f.write_str("exact"),
            PrecisionClass::Fast32 => f.write_str("f32"),
            PrecisionClass::Fixed(q) => write!(f, "q{q}"),
        }
    }
}

impl std::str::FromStr for PrecisionClass {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        if s.eq_ignore_ascii_case("exact") || s.eq_ignore_ascii_case("f64") {
            return Ok(PrecisionClass::Exact64);
        }
        if s.eq_ignore_ascii_case("f32") {
            return Ok(PrecisionClass::Fast32);
        }
        if let Some(q) = s.strip_prefix(['q', 'Q']) {
            let q: u8 = q
                .parse()
                .map_err(|e| format!("bad fixed-point q {q:?}: {e}"))?;
            let class = PrecisionClass::Fixed(q);
            class.validate().map_err(|e| e.to_string())?;
            return Ok(class);
        }
        Err(format!(
            "unknown precision class {s:?} (exact | f32 | qN with N in 1..=30)"
        ))
    }
}

// ---------------------------------------------------------------------------
// ScoreScalar
// ---------------------------------------------------------------------------

/// One score-storage width: the arithmetic the quantized diffusion and
/// push kernels are generic over.
///
/// All masses live in `[0, 1]` (diffusions start from unit vectors), so
/// fixed-point implementations can use the full fractional range. The
/// `f64` implementation makes the generic kernels *bit-identical* to
/// plain `f64` arithmetic.
pub trait ScoreScalar:
    Copy + Default + PartialEq + Send + Sync + std::fmt::Debug + 'static
{
    /// Display name for telemetry/tests.
    const NAME: &'static str;
    /// Quantization context (the fixed-point format; `()` for floats).
    type Ctx: Copy;
    /// A pre-quantized multiplicative coefficient in `[0, 1]`.
    type Coeff: Copy;

    /// Quantizes an `f64` mass into this width.
    fn encode(ctx: Self::Ctx, x: f64) -> Self;
    /// Dequantizes back to `f64`.
    fn decode(self, ctx: Self::Ctx) -> f64;
    /// Pre-quantizes a coefficient `c ∈ [0, 1]` for [`ScoreScalar::mul_coeff`].
    fn coeff(ctx: Self::Ctx, c: f64) -> Self::Coeff;
    /// `self · c`.
    fn mul_coeff(self, c: Self::Coeff) -> Self;
    /// `self / deg` (`deg ≥ 1`): the per-node propagation share.
    fn div_degree(self, deg: u32) -> Self;
    /// `self · c` rounded toward zero. The push kernel uses this for the
    /// forwarded `α`-share so fixed-point pushed mass *strictly*
    /// decreases (a rounding multiply can map one quantum back to one
    /// quantum and ping-pong forever). Floats are unchanged.
    fn mul_coeff_floor(self, c: Self::Coeff) -> Self {
        self.mul_coeff(c)
    }
    /// `self / deg` rounded toward zero (same termination argument).
    fn div_degree_floor(self, deg: u32) -> Self {
        self.div_degree(deg)
    }
    /// Saturating/exact addition.
    fn add(self, rhs: Self) -> Self;
    /// Whether this value carries no mass.
    fn is_zero(self) -> bool;
}

impl ScoreScalar for f64 {
    const NAME: &'static str = "f64";
    type Ctx = ();
    type Coeff = f64;

    #[inline(always)]
    fn encode(_: (), x: f64) -> f64 {
        x
    }
    #[inline(always)]
    fn decode(self, _: ()) -> f64 {
        self
    }
    #[inline(always)]
    fn coeff(_: (), c: f64) -> f64 {
        c
    }
    #[inline(always)]
    fn mul_coeff(self, c: f64) -> f64 {
        self * c
    }
    #[inline(always)]
    fn div_degree(self, deg: u32) -> f64 {
        self / deg as f64
    }
    #[inline(always)]
    fn add(self, rhs: f64) -> f64 {
        self + rhs
    }
    #[inline(always)]
    fn is_zero(self) -> bool {
        self == 0.0
    }
}

impl ScoreScalar for f32 {
    const NAME: &'static str = "f32";
    type Ctx = ();
    type Coeff = f32;

    #[inline(always)]
    fn encode(_: (), x: f64) -> f32 {
        x as f32
    }
    #[inline(always)]
    fn decode(self, _: ()) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn coeff(_: (), c: f64) -> f32 {
        c as f32
    }
    #[inline(always)]
    fn mul_coeff(self, c: f32) -> f32 {
        self * c
    }
    #[inline(always)]
    fn div_degree(self, deg: u32) -> f32 {
        self / deg as f32
    }
    #[inline(always)]
    fn add(self, rhs: f32) -> f32 {
        self + rhs
    }
    #[inline(always)]
    fn is_zero(self) -> bool {
        self == 0.0
    }
}

/// The fixed-point quantization context: `q` fractional bits of a `u32`
/// score word (unit mass = `2^q`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QCtx {
    /// Fractional bits (1..=30).
    pub q: u32,
}

impl QCtx {
    /// Context for a validated [`PrecisionClass::Fixed`] rung.
    pub fn new(q: u8) -> Self {
        QCtx { q: q as u32 }
    }
}

/// A pre-quantized coefficient for [`Qu32`] multiply-shift.
#[derive(Debug, Clone, Copy)]
pub struct QCoeff {
    m: u64,
    q: u32,
}

/// A `u32` fixed-point score with runtime `q` (see [`QCtx`]). Unit mass
/// encodes to exactly `2^q`; arithmetic uses the shared
/// [`mul_shift_round`] core (the FPGA's rounding MAC semantics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Qu32(pub u32);

impl ScoreScalar for Qu32 {
    const NAME: &'static str = "q-fixed";
    type Ctx = QCtx;
    type Coeff = QCoeff;

    #[inline(always)]
    fn encode(ctx: QCtx, x: f64) -> Qu32 {
        Qu32((x.max(0.0) * (1u64 << ctx.q) as f64).round() as u32)
    }
    #[inline(always)]
    fn decode(self, ctx: QCtx) -> f64 {
        self.0 as f64 / (1u64 << ctx.q) as f64
    }
    #[inline(always)]
    fn coeff(ctx: QCtx, c: f64) -> QCoeff {
        QCoeff {
            m: fixed_coeff(c, ctx.q),
            q: ctx.q,
        }
    }
    #[inline(always)]
    fn mul_coeff(self, c: QCoeff) -> Qu32 {
        Qu32(mul_shift_round(self.0 as u64, c.m, c.q) as u32)
    }
    #[inline(always)]
    fn div_degree(self, deg: u32) -> Qu32 {
        Qu32((self.0 + deg / 2) / deg)
    }
    #[inline(always)]
    fn mul_coeff_floor(self, c: QCoeff) -> Qu32 {
        Qu32(mul_shift(self.0 as u64, c.m, c.q) as u32)
    }
    #[inline(always)]
    fn div_degree_floor(self, deg: u32) -> Qu32 {
        Qu32(self.0 / deg)
    }
    #[inline(always)]
    fn add(self, rhs: Qu32) -> Qu32 {
        Qu32(self.0.saturating_add(rhs.0))
    }
    #[inline(always)]
    fn is_zero(self) -> bool {
        self.0 == 0
    }
}

// ---------------------------------------------------------------------------
// Ball views: full Subgraph or CompactBall
// ---------------------------------------------------------------------------

/// The adjacency interface the quantized kernel propagates over —
/// implemented by both the full [`Subgraph`] and the reduced-width
/// [`CompactBall`] (whose neighbor ids are `u16`, so it cannot implement
/// [`GraphView`]'s `&[u32]` contract).
pub trait QuantView {
    /// Nodes in the view (local ids `0..n`).
    fn num_nodes(&self) -> usize;
    /// The random-walk divisor (parent-graph degree for balls).
    fn walk_degree(&self, u: NodeId) -> u32;
    /// In-view neighbors of `u`.
    fn neighbors_len(&self, u: NodeId) -> usize;
    /// Visits every in-view neighbor of `u` in adjacency order.
    fn for_each_neighbor(&self, u: NodeId, f: impl FnMut(NodeId));
}

impl QuantView for Subgraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        GraphView::num_nodes(self)
    }
    #[inline]
    fn walk_degree(&self, u: NodeId) -> u32 {
        GraphView::walk_degree(self, u)
    }
    #[inline]
    fn neighbors_len(&self, u: NodeId) -> usize {
        GraphView::neighbors(self, u).len()
    }
    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        for &v in GraphView::neighbors(self, u) {
            f(v);
        }
    }
}

impl QuantView for meloppr_graph::CsrGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        GraphView::num_nodes(self)
    }
    #[inline]
    fn walk_degree(&self, u: NodeId) -> u32 {
        GraphView::walk_degree(self, u)
    }
    #[inline]
    fn neighbors_len(&self, u: NodeId) -> usize {
        GraphView::neighbors(self, u).len()
    }
    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        for &v in GraphView::neighbors(self, u) {
            f(v);
        }
    }
}

/// A cached BFS ball stored at reduced width: `u16` local adjacency, no
/// global→local hash map. Numerically interchangeable with the full
/// [`Subgraph`] it was built from (same node order, same adjacency
/// order, same parent degrees), at roughly **half** the resident bytes —
/// which is exactly what lets a byte-budgeted cache
/// ([`CacheBudget::bytes`](crate::cache::CacheBudget)) hold ~2× more
/// balls (asserted by the fig5 ladder section at ≥ 1.5×).
///
/// Only balls with ≤ 65 536 nodes compress (`u16` local ids); larger
/// balls stay full-width ([`CompactBall::from_subgraph`] returns `None`
/// and the cache falls back to the full representation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactBall {
    global_ids: Vec<NodeId>,
    offsets: Vec<u32>,
    neighbors: Vec<u16>,
    walk_degrees: Vec<u32>,
}

impl CompactBall {
    /// Compresses a full ball; `None` when the ball has more nodes than
    /// `u16` local ids can address.
    pub fn from_subgraph(sub: &Subgraph) -> Option<Self> {
        let n = GraphView::num_nodes(sub);
        if n > u16::MAX as usize + 1 {
            return None;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(sub.csr().num_directed_edges());
        let mut walk_degrees = Vec::with_capacity(n);
        offsets.push(0u32);
        for u in 0..n as NodeId {
            for &v in GraphView::neighbors(sub, u) {
                neighbors.push(v as u16);
            }
            offsets.push(neighbors.len() as u32);
            walk_degrees.push(GraphView::walk_degree(sub, u));
        }
        Some(CompactBall {
            global_ids: sub.global_ids().to_vec(),
            offsets,
            neighbors,
            walk_degrees,
        })
    }

    /// Reassembles a ball from its four raw arrays — the decode half of
    /// the on-disk ball-index codec (`meloppr_core::ballindex`).
    ///
    /// Every structural invariant the in-memory accessors rely on is
    /// validated up front, so a corrupt or truncated index record can
    /// never cause an out-of-bounds panic downstream: the offsets array
    /// must be a monotone prefix-sum starting at 0 and ending at
    /// `neighbors.len()`, every local neighbor id must address a node,
    /// and the per-node arrays must agree on the node count (which must
    /// fit `u16` local ids, as for [`CompactBall::from_subgraph`]).
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] describing the first violated
    /// invariant.
    pub fn from_raw_parts(
        global_ids: Vec<NodeId>,
        offsets: Vec<u32>,
        neighbors: Vec<u16>,
        walk_degrees: Vec<u32>,
    ) -> Result<Self> {
        let n = global_ids.len();
        let invalid = |reason: String| PprError::InvalidParams { reason };
        if n == 0 {
            return Err(invalid("compact ball must have at least one node".into()));
        }
        if n > u16::MAX as usize + 1 {
            return Err(invalid(format!(
                "compact ball has {n} nodes; u16 local ids address at most 65536"
            )));
        }
        if walk_degrees.len() != n {
            return Err(invalid(format!(
                "walk_degrees length {} != node count {n}",
                walk_degrees.len()
            )));
        }
        if offsets.len() != n + 1 {
            return Err(invalid(format!(
                "offsets length {} != node count + 1 ({})",
                offsets.len(),
                n + 1
            )));
        }
        if offsets[0] != 0 {
            return Err(invalid(format!(
                "offsets must start at 0, got {}",
                offsets[0]
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(invalid("offsets must be non-decreasing".into()));
        }
        if offsets[n] as usize != neighbors.len() {
            return Err(invalid(format!(
                "offsets end at {} but {} neighbors are stored",
                offsets[n],
                neighbors.len()
            )));
        }
        if neighbors.iter().any(|&v| v as usize >= n) {
            return Err(invalid(format!(
                "neighbor local id out of bounds for {n} nodes"
            )));
        }
        Ok(CompactBall {
            global_ids,
            offsets,
            neighbors,
            walk_degrees,
        })
    }

    /// Inflates the compact form back into a full [`Subgraph`] —
    /// bit-identical to the extraction that produced it, because
    /// [`CompactBall::from_subgraph`] preserves the CSR layout exactly
    /// (only narrowing local ids to `u16`). The cache's cold tier uses
    /// this so disk-served balls diffuse through the same full-width
    /// kernel as RAM-resident ones under [`BallStore::Full`].
    ///
    /// [`BallStore::Full`]: crate::cache::BallStore::Full
    ///
    /// # Errors
    ///
    /// Propagates the [`Subgraph::from_parts`] validation error when the
    /// arrays do not describe a well-formed ball (unreachable for balls
    /// built by [`CompactBall::from_subgraph`] or validated by
    /// [`CompactBall::from_raw_parts`] over an undirected parent graph).
    pub fn to_subgraph(&self) -> Result<Subgraph> {
        let neighbors: Vec<NodeId> = self.neighbors.iter().map(|&v| NodeId::from(v)).collect();
        Subgraph::from_parts(
            self.global_ids.clone(),
            self.offsets.clone(),
            neighbors,
            self.walk_degrees.clone(),
        )
        .map_err(PprError::from)
    }

    /// The ball seed's local id (always 0, as for [`Subgraph`]).
    pub fn seed_local(&self) -> NodeId {
        0
    }

    /// Maps a local id back to the parent graph's id.
    pub fn to_global(&self, local: NodeId) -> NodeId {
        self.global_ids[local as usize]
    }

    /// The local→global id table.
    pub fn global_ids(&self) -> &[NodeId] {
        &self.global_ids
    }

    /// Directed adjacency entries stored.
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The CSR offsets array (`n + 1` entries) — the encode half of the
    /// ball-index codec reads the raw arrays directly.
    pub(crate) fn offsets_raw(&self) -> &[u32] {
        &self.offsets
    }

    /// The packed `u16` local adjacency array.
    pub(crate) fn neighbors_raw(&self) -> &[u16] {
        &self.neighbors
    }

    /// The parent-graph walk-degree array (one entry per node).
    pub(crate) fn walk_degrees_raw(&self) -> &[u32] {
        &self.walk_degrees
    }

    /// Heap bytes of this representation — the number a byte-budgeted
    /// cache charges for a compact resident.
    pub fn memory_bytes_total(&self) -> usize {
        self.global_ids.len() * std::mem::size_of::<NodeId>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.neighbors.len() * std::mem::size_of::<u16>()
            + self.walk_degrees.len() * std::mem::size_of::<u32>()
    }
}

impl QuantView for CompactBall {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.global_ids.len()
    }
    #[inline]
    fn walk_degree(&self, u: NodeId) -> u32 {
        self.walk_degrees[u as usize]
    }
    #[inline]
    fn neighbors_len(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }
    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        let (s, e) = (
            self.offsets[u as usize] as usize,
            self.offsets[u as usize + 1] as usize,
        );
        for &v in &self.neighbors[s..e] {
            f(v as NodeId);
        }
    }
}

// ---------------------------------------------------------------------------
// The quantized diffusion kernel
// ---------------------------------------------------------------------------

/// Reusable dense buffers of one [`diffuse_quantized`] width. Buffers
/// are re-zeroed, never re-allocated, so steady-state quantized
/// diffusion performs no heap allocation (covered by `alloc_smoke`).
#[derive(Debug, Default)]
pub struct QuantScratch<S: ScoreScalar> {
    power: Vec<S>,
    next: Vec<S>,
    accumulated: Vec<S>,
}

/// One scratch per ladder width, owned by the query workspace. Only the
/// widths a query actually uses ever grow.
#[derive(Debug, Default)]
pub struct QuantScratchSet {
    /// `f64` dense scratch (Exact64 on compact balls).
    pub f64: QuantScratch<f64>,
    /// `f32` dense scratch (Fast32).
    pub f32: QuantScratch<f32>,
    /// Fixed-point dense scratch (`Fixed(q)`).
    pub fx: QuantScratch<Qu32>,
}

/// Runs `GD(l)` at width `S` over any ball view, decoding the results
/// into the caller's `f64` [`DiffusionScratch`] (`out.accumulated()` /
/// `out.residual()`), so everything downstream of a diffusion is
/// width-agnostic.
///
/// The kernel is dense and branch-free in the hot propagate loop: the
/// accumulate step folds `(1-α)·α^k·p_k` over flat arrays with
/// `chunks_exact` (auto-vectorizes at every width), and the propagate
/// step visits every node's adjacency unconditionally — on BFS balls the
/// frontier saturates within a step or two, so the sparse kernel's
/// frontier bookkeeping (a branch plus a push per edge) costs more than
/// it saves. This is where the ladder's measured ≥ 1.2× diffusion
/// speedup comes from.
///
/// # Errors
///
/// As [`diffuse_into`](crate::diffusion::diffuse_into): invalid config
/// or an out-of-bounds init node.
pub fn diffuse_quantized<S: ScoreScalar, V: QuantView + ?Sized>(
    g: &V,
    init: &[(NodeId, f64)],
    config: DiffusionConfig,
    ctx: S::Ctx,
    qs: &mut QuantScratch<S>,
    out: &mut DiffusionScratch,
) -> Result<DiffusionWork> {
    let config = DiffusionConfig::new(config.alpha, config.iterations)?;
    let n = g.num_nodes();
    qs.power.clear();
    qs.power.resize(n, S::default());
    qs.next.clear();
    qs.next.resize(n, S::default());
    qs.accumulated.clear();
    qs.accumulated.resize(n, S::default());

    for &(v, mass) in init {
        if v as usize >= n {
            return Err(PprError::Graph(
                meloppr_graph::GraphError::NodeOutOfBounds {
                    node: v,
                    num_nodes: n,
                },
            ));
        }
        let prev = qs.power[v as usize];
        qs.power[v as usize] = prev.add(S::encode(ctx, mass));
    }

    let alpha = config.alpha;
    let l = config.iterations;
    let mut work = DiffusionWork::default();
    let mut alpha_k = 1.0f64; // α^k, folded into the accumulate coefficient

    for _ in 0..l {
        // Accumulate: πa += (1-α)·α^k·p_k, dense over flat arrays.
        // `chunks_exact` gives the optimizer fixed-width blocks to
        // vectorize; the remainder loop handles n % 8 tail lanes.
        let ck = S::coeff(ctx, (1.0 - alpha) * alpha_k);
        {
            let mut acc_chunks = qs.accumulated.chunks_exact_mut(8);
            let mut pow_chunks = qs.power.chunks_exact(8);
            for (acc, pow) in (&mut acc_chunks).zip(&mut pow_chunks) {
                for i in 0..8 {
                    acc[i] = acc[i].add(pow[i].mul_coeff(ck));
                }
            }
            for (acc, pow) in acc_chunks
                .into_remainder()
                .iter_mut()
                .zip(pow_chunks.remainder())
            {
                *acc = acc.add(pow.mul_coeff(ck));
            }
        }
        // Propagate: p_{k+1} = W·p_k, dense. The inner scatter loop has
        // no branch: share is 0 for massless nodes and adding 0 is a
        // no-op at every width.
        for u in 0..n as NodeId {
            let mass = qs.power[u as usize];
            if mass.is_zero() {
                continue;
            }
            let deg = g.walk_degree(u);
            if deg == 0 {
                // Isolated node: self-retain to keep W stochastic.
                let prev = qs.next[u as usize];
                qs.next[u as usize] = prev.add(mass);
                continue;
            }
            let share = mass.div_degree(deg);
            let in_view = g.neighbors_len(u);
            work.edge_updates += in_view;
            g.for_each_neighbor(u, |v| {
                let prev = qs.next[v as usize];
                qs.next[v as usize] = prev.add(share);
            });
            work.leaked_mass += share.decode(ctx) * (deg as usize - in_view) as f64;
        }
        std::mem::swap(&mut qs.power, &mut qs.next);
        for x in qs.next.iter_mut() {
            *x = S::default();
        }
        alpha_k *= alpha;
        work.iterations += 1;
    }

    // Final term: πa += α^l·p_l; then decode both outputs into the f64
    // scratch the staged engine post-processes.
    let cl = S::coeff(ctx, alpha_k);
    out.power.clear();
    out.power.resize(n, 0.0);
    out.accumulated.clear();
    out.accumulated.resize(n, 0.0);
    for i in 0..n {
        let acc = qs.accumulated[i].add(qs.power[i].mul_coeff(cl));
        out.accumulated[i] = acc.decode(ctx);
        out.power[i] = qs.power[i].decode(ctx);
    }
    Ok(work)
}

/// Dispatches one ball diffusion at the requested [`PrecisionClass`],
/// writing decoded results into `out`. `Exact64` over a full
/// [`Subgraph`] takes the legacy frontier-sparse kernel (bit-identical
/// to the pre-ladder pipeline); every other combination runs the dense
/// quantized kernel.
pub(crate) fn diffuse_ball(
    ball: BallRef<'_>,
    init: &[(NodeId, f64)],
    config: DiffusionConfig,
    class: PrecisionClass,
    qs: &mut QuantScratchSet,
    out: &mut DiffusionScratch,
) -> Result<DiffusionWork> {
    match (ball, class) {
        (BallRef::Full(sub), PrecisionClass::Exact64) => {
            crate::diffusion::diffuse_into(sub, init, config, out)
        }
        (BallRef::Full(sub), PrecisionClass::Fast32) => {
            diffuse_quantized::<f32, _>(sub, init, config, (), &mut qs.f32, out)
        }
        (BallRef::Full(sub), PrecisionClass::Fixed(q)) => {
            diffuse_quantized::<Qu32, _>(sub, init, config, QCtx::new(q), &mut qs.fx, out)
        }
        (BallRef::Compact(b), PrecisionClass::Exact64) => {
            diffuse_quantized::<f64, _>(b, init, config, (), &mut qs.f64, out)
        }
        (BallRef::Compact(b), PrecisionClass::Fast32) => {
            diffuse_quantized::<f32, _>(b, init, config, (), &mut qs.f32, out)
        }
        (BallRef::Compact(b), PrecisionClass::Fixed(q)) => {
            diffuse_quantized::<Qu32, _>(b, init, config, QCtx::new(q), &mut qs.fx, out)
        }
    }
}

/// A borrowed ball in either representation — what the staged engine
/// hands to [`diffuse_ball`].
#[derive(Clone, Copy)]
pub(crate) enum BallRef<'a> {
    Full(&'a Subgraph),
    Compact(&'a CompactBall),
}

impl BallRef<'_> {
    /// Nodes in the ball.
    pub(crate) fn num_nodes(&self) -> usize {
        match *self {
            BallRef::Full(sub) => GraphView::num_nodes(sub),
            BallRef::Compact(ball) => ball.global_ids().len(),
        }
    }

    /// Undirected edges in the ball.
    pub(crate) fn num_edges(&self) -> usize {
        match *self {
            BallRef::Full(sub) => sub.num_edges(),
            BallRef::Compact(ball) => ball.num_directed_edges() / 2,
        }
    }

    /// The seed's local id (always 0 for BFS balls).
    pub(crate) fn seed_local(&self) -> NodeId {
        match *self {
            BallRef::Full(sub) => sub.seed_local(),
            BallRef::Compact(ball) => ball.seed_local(),
        }
    }

    /// Maps a local id back to the parent graph's id.
    pub(crate) fn to_global(self, local: NodeId) -> NodeId {
        match self {
            BallRef::Full(sub) => sub.to_global(local),
            BallRef::Compact(ball) => ball.to_global(local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusion::{diffuse_from_seed, DiffusionConfig};
    use meloppr_graph::{bfs_ball, generators};

    fn cfg(l: usize) -> DiffusionConfig {
        DiffusionConfig::new(0.85, l).unwrap()
    }

    #[test]
    fn precision_class_roundtrip_strings() {
        for class in [
            PrecisionClass::Exact64,
            PrecisionClass::Fast32,
            PrecisionClass::Fixed(16),
            PrecisionClass::Fixed(8),
        ] {
            let s = class.to_string();
            assert_eq!(s.parse::<PrecisionClass>().unwrap(), class, "{s}");
        }
        assert!("q0".parse::<PrecisionClass>().is_err());
        assert!("q31".parse::<PrecisionClass>().is_err());
        assert!("banana".parse::<PrecisionClass>().is_err());
        assert_eq!(
            "f64".parse::<PrecisionClass>().unwrap(),
            PrecisionClass::Exact64
        );
    }

    #[test]
    fn ladder_degrades_width_first_then_stops() {
        assert_eq!(
            PrecisionClass::Exact64.degraded(),
            Some(PrecisionClass::Fast32)
        );
        assert_eq!(
            PrecisionClass::Fast32.degraded(),
            Some(PrecisionClass::Fixed(DEFAULT_FIXED_Q))
        );
        assert_eq!(PrecisionClass::Fixed(16).degraded(), None);
    }

    #[test]
    fn fixed_coeff_matches_fpga_alpha_p_semantics() {
        // round(0.85 * 2^15) = 27853, the FPGA's alpha_p at q=15.
        assert_eq!(fixed_coeff(0.85, 15), 27853);
        assert_eq!(mul_shift(1 << 15, fixed_coeff(0.85, 15), 15), 27853);
    }

    #[test]
    fn f64_quantized_kernel_matches_sparse_kernel() {
        let g = generators::karate_club();
        let ball = bfs_ball(&g, 0, 3).unwrap();
        let sub = meloppr_graph::Subgraph::extract(&g, &ball).unwrap();
        let mut qs = QuantScratch::<f64>::default();
        let mut out = DiffusionScratch::new();
        for l in [0usize, 1, 3] {
            let exact = diffuse_from_seed(&sub, 0, cfg(l)).unwrap();
            diffuse_quantized::<f64, _>(&sub, &[(0, 1.0)], cfg(l), (), &mut qs, &mut out).unwrap();
            for i in 0..exact.accumulated.len() {
                assert!(
                    (out.accumulated()[i] - exact.accumulated[i]).abs() < 1e-12,
                    "l={l} i={i}"
                );
                assert!((out.residual()[i] - exact.residual[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn f32_and_fixed_stay_close_to_exact() {
        let g = generators::karate_club();
        let ball = bfs_ball(&g, 0, 4).unwrap();
        let sub = meloppr_graph::Subgraph::extract(&g, &ball).unwrap();
        let exact = diffuse_from_seed(&sub, 0, cfg(4)).unwrap();
        let mut out = DiffusionScratch::new();

        let mut q32 = QuantScratch::<f32>::default();
        diffuse_quantized::<f32, _>(&sub, &[(0, 1.0)], cfg(4), (), &mut q32, &mut out).unwrap();
        for i in 0..exact.accumulated.len() {
            assert!((out.accumulated()[i] - exact.accumulated[i]).abs() < 1e-5);
        }

        let mut qfx = QuantScratch::<Qu32>::default();
        diffuse_quantized::<Qu32, _>(&sub, &[(0, 1.0)], cfg(4), QCtx::new(16), &mut qfx, &mut out)
            .unwrap();
        let total: f64 = out.accumulated().iter().sum();
        assert!((total - 1.0).abs() < 0.01, "q16 mass drifted: {total}");
        for i in 0..exact.accumulated.len() {
            assert!(
                (out.accumulated()[i] - exact.accumulated[i]).abs() < 2e-3,
                "i={i}: {} vs {}",
                out.accumulated()[i],
                exact.accumulated[i]
            );
        }
    }

    #[test]
    fn compact_ball_is_numerically_interchangeable() {
        let g = generators::grid(12, 12).unwrap();
        let ball = bfs_ball(&g, 40, 3).unwrap();
        let sub = meloppr_graph::Subgraph::extract(&g, &ball).unwrap();
        let compact = CompactBall::from_subgraph(&sub).unwrap();
        assert_eq!(QuantView::num_nodes(&compact), GraphView::num_nodes(&sub));
        assert_eq!(compact.global_ids(), sub.global_ids());

        let mut qs = QuantScratch::<f32>::default();
        let mut out_full = DiffusionScratch::new();
        let mut out_compact = DiffusionScratch::new();
        diffuse_quantized::<f32, _>(&sub, &[(0, 1.0)], cfg(3), (), &mut qs, &mut out_full).unwrap();
        diffuse_quantized::<f32, _>(&compact, &[(0, 1.0)], cfg(3), (), &mut qs, &mut out_compact)
            .unwrap();
        assert_eq!(out_full.accumulated(), out_compact.accumulated());
        assert_eq!(out_full.residual(), out_compact.residual());
    }

    #[test]
    fn compact_to_subgraph_is_bit_identical_to_extraction() {
        let g = generators::grid(12, 12).unwrap();
        for (seed, depth) in [(40, 3), (0, 2), (143, 4)] {
            let ball = bfs_ball(&g, seed, depth).unwrap();
            let sub = meloppr_graph::Subgraph::extract(&g, &ball).unwrap();
            let compact = CompactBall::from_subgraph(&sub).unwrap();
            let inflated = compact.to_subgraph().unwrap();
            assert_eq!(inflated.global_ids(), sub.global_ids());
            assert_eq!(inflated.seed_local(), sub.seed_local());
            let n = GraphView::num_nodes(&sub) as NodeId;
            assert_eq!(GraphView::num_nodes(&inflated) as NodeId, n);
            for u in 0..n {
                assert_eq!(
                    GraphView::neighbors(&inflated, u),
                    GraphView::neighbors(&sub, u)
                );
                assert_eq!(
                    GraphView::walk_degree(&inflated, u),
                    GraphView::walk_degree(&sub, u)
                );
            }
            // The full-width f64 kernel over the inflated ball must be
            // bit-identical to the same kernel over the original — this
            // is the cold tier's Exact64 bit-identity guarantee.
            let a = diffuse_from_seed(&sub, 0, cfg(depth as usize)).unwrap();
            let b = diffuse_from_seed(&inflated, 0, cfg(depth as usize)).unwrap();
            assert_eq!(a.accumulated, b.accumulated);
            assert_eq!(a.residual, b.residual);
        }
    }

    #[test]
    fn compact_ball_halves_resident_bytes() {
        let g = generators::grid(20, 20).unwrap();
        let ball = bfs_ball(&g, 210, 4).unwrap();
        let sub = meloppr_graph::Subgraph::extract(&g, &ball).unwrap();
        let compact = CompactBall::from_subgraph(&sub).unwrap();
        let full = sub.memory_bytes().total();
        let small = compact.memory_bytes_total();
        assert!(
            full as f64 / small as f64 >= 1.5,
            "compact ball saves too little: {full} vs {small}"
        );
    }

    #[test]
    fn oversized_balls_do_not_compress() {
        // A synthetic subgraph over 70k nodes cannot use u16 local ids.
        // (Construct via a path graph ball that covers everything.)
        let g = generators::path(70_000).unwrap();
        let ball = bfs_ball(&g, 0, 70_000).unwrap();
        let sub = meloppr_graph::Subgraph::extract(&g, &ball).unwrap();
        assert!(CompactBall::from_subgraph(&sub).is_none());
    }

    #[test]
    fn quantized_rejects_bad_inputs() {
        let g = generators::karate_club();
        let ball = bfs_ball(&g, 0, 2).unwrap();
        let sub = meloppr_graph::Subgraph::extract(&g, &ball).unwrap();
        let mut qs = QuantScratch::<f32>::default();
        let mut out = DiffusionScratch::new();
        assert!(
            diffuse_quantized::<f32, _>(&sub, &[(9999, 1.0)], cfg(2), (), &mut qs, &mut out)
                .is_err()
        );
    }
}
