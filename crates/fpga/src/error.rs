//! Error types for the accelerator simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the FPGA simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FpgaError {
    /// A graph-substrate operation failed.
    Graph(meloppr_graph::GraphError),
    /// An algorithm-core operation failed.
    Ppr(String),
    /// Configuration failed validation (zero parallelism, zero clock, …).
    InvalidConfig {
        /// Why the configuration was rejected.
        reason: String,
    },
    /// The fixed-point format cannot represent the requested graph
    /// (`Max = d·|G_L(s)|` overflowing 32 bits, zero `d`, …).
    FixedPointOverflow {
        /// Human-readable description of the overflow.
        reason: String,
    },
    /// A sub-graph exceeds the per-PE BRAM capacity of the device model.
    CapacityExceeded {
        /// Bytes the sub-graph needs.
        required: usize,
        /// Bytes one PE provides.
        available: usize,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::Graph(e) => write!(f, "graph error: {e}"),
            FpgaError::Ppr(msg) => write!(f, "ppr core error: {msg}"),
            FpgaError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            FpgaError::FixedPointOverflow { reason } => {
                write!(f, "fixed-point overflow: {reason}")
            }
            FpgaError::CapacityExceeded {
                required,
                available,
            } => write!(
                f,
                "sub-graph needs {required} bytes but a PE provides {available}"
            ),
        }
    }
}

impl Error for FpgaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FpgaError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<meloppr_graph::GraphError> for FpgaError {
    fn from(err: meloppr_graph::GraphError) -> Self {
        FpgaError::Graph(err)
    }
}

impl From<meloppr_core::PprError> for FpgaError {
    fn from(err: meloppr_core::PprError) -> Self {
        match err {
            meloppr_core::PprError::Graph(g) => FpgaError::Graph(g),
            other => FpgaError::Ppr(other.to_string()),
        }
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, FpgaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = FpgaError::CapacityExceeded {
            required: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn conversions() {
        let g: FpgaError = meloppr_graph::GraphError::EmptyGraph.into();
        assert!(matches!(g, FpgaError::Graph(_)));
        let p: FpgaError =
            meloppr_core::PprError::Graph(meloppr_graph::GraphError::EmptyGraph).into();
        assert!(matches!(p, FpgaError::Graph(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<FpgaError>();
    }
}
