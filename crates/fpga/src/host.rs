//! The hybrid CPU+FPGA platform: host orchestration of MeLoPPR queries
//! (Fig. 4).
//!
//! The host CPU (the "PS" side) extracts sub-graphs with BFS, reorganizes
//! them into table form, and streams them to the accelerator; the FPGA
//! ("PL") runs the integer diffusions and keeps the bounded global score
//! table on chip so scores never cross back per diffusion (§V-B). Only the
//! selected next-stage node ids and, at the very end, the top-`k` result
//! return to the host.
//!
//! [`HybridMeloppr`] mirrors `meloppr-core`'s engine task-for-task but in
//! the fixed-point domain and with full latency accounting, producing the
//! per-query [`LatencyBreakdown`] that Fig. 5 and Fig. 7 report.

use std::collections::VecDeque;

use meloppr_core::memory::fpga_bram_bytes;
use meloppr_core::{MelopprParams, QueryWorkspace, Ranking, ResidualPolicy};
use meloppr_graph::{GraphView, NodeId};

use crate::accelerator::{AcceleratorConfig, FpgaAccelerator};
use crate::error::Result;
use crate::fixed_point::FixedPointFormat;
use crate::latency::{CycleBreakdown, LatencyBreakdown};
use crate::tables::IntGlobalTable;

/// Cost model of the native host code driving the accelerator.
///
/// The defaults model a compiled host (the paper's PS-side C/C++ driver):
/// tens of nanoseconds per adjacency entry scanned during BFS and per node
/// reorganized into table form, plus a fixed per-query software overhead.
/// These constants only scale the host component of the latency split;
/// the experiment binaries print them alongside results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCostModel {
    /// Nanoseconds per adjacency entry scanned by the extraction BFS.
    pub ns_per_bfs_edge: f64,
    /// Nanoseconds per ball node reorganized into the sub-graph table.
    pub ns_per_extract_node: f64,
    /// Fixed per-query overhead (driver calls, result assembly).
    pub fixed_overhead_ns: f64,
}

impl Default for HostCostModel {
    fn default() -> Self {
        HostCostModel {
            ns_per_bfs_edge: 12.0,
            ns_per_extract_node: 40.0,
            fixed_overhead_ns: 5_000.0,
        }
    }
}

/// Configuration of the hybrid platform.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HybridConfig {
    /// The FPGA accelerator instance.
    pub accel: AcceleratorConfig,
    /// The host cost model.
    pub host: HostCostModel,
    /// When `true`, the streaming interface is double-buffered: the next
    /// sub-graph's transfer overlaps the current diffusion, so only the
    /// portion of each transfer exceeding the previous task's compute
    /// shows up as exposed data-movement latency. Functionally invisible;
    /// timing-only.
    pub double_buffered: bool,
}

/// Work/memory statistics of one hybrid query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridStats {
    /// Total diffusions executed.
    pub diffusions: usize,
    /// Diffusions per stage.
    pub stage_diffusions: Vec<usize>,
    /// Next-stage nodes expanded in total.
    pub expanded_total: usize,
    /// Largest ball (nodes) diffused.
    pub max_ball_nodes: usize,
    /// Largest ball (edges) diffused.
    pub max_ball_edges: usize,
    /// Peak BRAM bytes: largest sub-graph's tables + the global table.
    pub bram_peak_bytes: usize,
    /// Evictions/rejections in the bounded global table.
    pub table_evictions: usize,
    /// Total integer mass lost to fixed-point truncation.
    pub truncation_loss: u64,
    /// Total FPGA cycles, by category.
    pub cycles: CycleBreakdown,
}

/// Result of one hybrid CPU+FPGA query.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridOutcome {
    /// Top-`k` in raw integer scores.
    pub ranking_int: Vec<(NodeId, u32)>,
    /// Top-`k` dequantized to probability estimates (comparable to the
    /// float engines).
    pub ranking: Ranking,
    /// End-to-end latency split.
    pub latency: LatencyBreakdown,
    /// Work/memory statistics.
    pub stats: HybridStats,
}

/// The hybrid-platform MeLoPPR engine.
///
/// # Examples
///
/// ```
/// use meloppr_core::MelopprParams;
/// use meloppr_fpga::{HybridConfig, HybridMeloppr};
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_fpga::FpgaError> {
/// let g = generators::karate_club();
/// let mut params = MelopprParams::paper_defaults();
/// params.ppr.k = 5;
/// let engine = HybridMeloppr::new(&g, params, HybridConfig::default())?;
/// let outcome = engine.query(0)?;
/// assert_eq!(outcome.ranking.len(), 5);
/// assert!(outcome.latency.total_ns() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HybridMeloppr<'g, G: GraphView + ?Sized> {
    graph: &'g G,
    params: MelopprParams,
    config: HybridConfig,
    accel: FpgaAccelerator,
    format: FixedPointFormat,
    table_capacity: usize,
}

struct IntTask {
    node: NodeId,
    weight: u32,
    stage: usize,
}

impl<'g, G: GraphView + ?Sized> HybridMeloppr<'g, G> {
    /// Creates a hybrid engine: validates parameters/configuration and
    /// derives the per-graph fixed-point format (§V-A).
    ///
    /// # Errors
    ///
    /// Returns configuration, parameter or fixed-point errors.
    pub fn new(graph: &'g G, params: MelopprParams, config: HybridConfig) -> Result<Self> {
        params.validate()?;
        let accel = FpgaAccelerator::new(config.accel)?;
        let format = FixedPointFormat::for_graph(
            graph,
            params.ppr.alpha,
            config.accel.q,
            config.accel.degree_scale,
        )?;
        // The FPGA global table is always bounded; default to the paper's
        // c = 10 when the parameters don't pin it.
        let table_capacity = params.table_factor.unwrap_or(10) * params.ppr.k;
        Ok(HybridMeloppr {
            graph,
            params,
            config,
            accel,
            format,
            table_capacity,
        })
    }

    /// The fixed-point format the engine derived for its graph.
    pub fn format(&self) -> &FixedPointFormat {
        &self.format
    }

    /// The engine's parameters.
    pub fn params(&self) -> &MelopprParams {
        &self.params
    }

    /// Runs one query from `seed` on the hybrid platform.
    ///
    /// # Errors
    ///
    /// Returns graph errors for bad seeds and
    /// [`FpgaError::CapacityExceeded`](crate::FpgaError::CapacityExceeded)
    /// if a sub-graph overflows the PE array.
    pub fn query(&self, seed: NodeId) -> Result<HybridOutcome> {
        self.query_with(seed, &mut QueryWorkspace::new())
    }

    /// As [`HybridMeloppr::query`], borrowing the host-side extraction
    /// storage (BFS scratch + sub-graph buffers) from `ws` — the PS-side
    /// half of the zero-allocation query path. Results are bit-identical
    /// to [`HybridMeloppr::query`].
    ///
    /// # Errors
    ///
    /// As [`HybridMeloppr::query`].
    pub fn query_with(&self, seed: NodeId, ws: &mut QueryWorkspace) -> Result<HybridOutcome> {
        let p = &self.params;
        let fmt = &self.format;
        let mut table = IntGlobalTable::new(self.table_capacity);
        let mut cycles = CycleBreakdown::default();
        let mut host_ns = self.config.host.fixed_overhead_ns;
        let mut truncation_loss = 0u64;
        let mut stage_diffusions = vec![0usize; p.stages.len()];
        let mut expanded_total = 0usize;
        let mut max_ball = (0usize, 0usize);

        let mut queue: VecDeque<IntTask> = VecDeque::new();
        queue.push_back(IntTask {
            node: seed,
            weight: fmt.max_value(),
            stage: 0,
        });
        // Compute cycles of the previous task, used to hide transfers when
        // the streaming interface is double-buffered.
        let mut prev_compute: u64 = 0;

        while let Some(task) = queue.pop_front() {
            let l = p.stages[task.stage];
            let last_stage = task.stage + 1 == p.stages.len();

            // Host: BFS extraction + reorganization, through the reusable
            // workspace (no per-task allocation in steady state).
            let (sub, bfs_edges_scanned) = ws.extract.extract(self.graph, task.node, l as u32)?;
            host_ns += bfs_edges_scanned as f64 * self.config.host.ns_per_bfs_edge
                + sub.num_nodes() as f64 * self.config.host.ns_per_extract_node;

            // Stream the sub-graph table in (overlapped with the previous
            // task's compute when double-buffered).
            let stream_in = self.accel.stream_in_cycles(sub);
            cycles.data_movement += if self.config.double_buffered {
                stream_in.saturating_sub(prev_compute)
            } else {
                stream_in
            };

            // FPGA: integer diffusion.
            let result = self.accel.run_diffusion(sub, fmt.max_value(), l, fmt)?;
            cycles.diffusion += result.cycles.diffusion;
            cycles.scheduling += result.cycles.scheduling;
            truncation_loss += result.truncation_loss;
            prev_compute = result.cycles.diffusion + result.cycles.scheduling;

            // Selection (on the α^l-scaled integer residuals).
            let mut expanded: Vec<(NodeId, u32)> = Vec::new();
            if !last_stage {
                let candidates: Vec<(NodeId, f64)> = result
                    .residual
                    .iter()
                    .enumerate()
                    .filter(|&(_, &r)| r > 0)
                    .map(|(local, &r)| (local as NodeId, r as f64))
                    .collect();
                expanded = p
                    .selection
                    .select(candidates)
                    .into_iter()
                    .map(|(local, r)| (local, r as u32))
                    .collect();
            }

            // Localized aggregation (Eq. 8 in the integer domain).
            let mut contribution = result.accumulated.clone();
            match p.residual_policy {
                ResidualPolicy::KeepUnexpanded => {
                    for &(local, r) in &expanded {
                        contribution[local as usize] =
                            contribution[local as usize].saturating_sub(r);
                    }
                }
                ResidualPolicy::DropUnexpanded => {
                    if !last_stage {
                        for (local, c) in contribution.iter_mut().enumerate() {
                            *c = c.saturating_sub(result.residual[local]);
                        }
                    }
                }
                ResidualPolicy::ScaledKeep => {
                    if !last_stage {
                        // Unexpanded keep the (1 - α)-scaled residual: the
                        // hardware subtracts the α-weighted share via the
                        // shift-multiply datapath.
                        for (local, c) in contribution.iter_mut().enumerate() {
                            *c = c.saturating_sub(fmt.mul_alpha(result.residual[local]));
                        }
                        for &(local, r) in &expanded {
                            contribution[local as usize] = contribution[local as usize]
                                .saturating_sub(fmt.mul_one_minus_alpha(r));
                        }
                    }
                }
            }
            for (local, &score) in contribution.iter().enumerate() {
                if score > 0 {
                    let weighted = fmt.weighted(task.weight, score);
                    if weighted > 0 {
                        table.add(sub.to_global(local as NodeId), weighted);
                    }
                }
            }

            // Next-stage node ids stream back to the host for BFS.
            if !expanded.is_empty() {
                cycles.data_movement += self.accel.stream_out_cycles(expanded.len());
            }
            for &(local, r) in &expanded {
                let weight = fmt.weighted(task.weight, r);
                if weight == 0 {
                    continue; // underflow: the walk's mass is below 1 ulp
                }
                queue.push_back(IntTask {
                    node: sub.to_global(local),
                    weight,
                    stage: task.stage + 1,
                });
            }

            stage_diffusions[task.stage] += 1;
            expanded_total += expanded.len();
            let bn = sub.num_nodes();
            let be = sub.num_edges();
            if fpga_bram_bytes(bn, be) > fpga_bram_bytes(max_ball.0, max_ball.1) {
                max_ball = (bn, be);
            }
        }

        // Final top-k readback.
        cycles.data_movement += self.accel.stream_out_cycles(p.ppr.k);

        let ranking_int = table.ranking(p.ppr.k);
        let ranking: Ranking = ranking_int
            .iter()
            .map(|&(v, s)| (v, fmt.dequantize(s)))
            .collect();
        let latency = LatencyBreakdown::from_cycles(cycles, self.config.accel.clock_mhz, host_ns);
        Ok(HybridOutcome {
            ranking_int,
            ranking,
            latency,
            stats: HybridStats {
                diffusions: stage_diffusions.iter().sum(),
                stage_diffusions,
                expanded_total,
                max_ball_nodes: max_ball.0,
                max_ball_edges: max_ball.1,
                bram_peak_bytes: fpga_bram_bytes(max_ball.0, max_ball.1) + table.bytes(),
                table_evictions: table.evictions(),
                truncation_loss,
                cycles,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_core::{
        exact_top_k, precision::precision_at_k, MelopprParams, PprParams, SelectionStrategy,
    };
    use meloppr_graph::generators;

    fn small_params(k: usize) -> MelopprParams {
        MelopprParams {
            ppr: PprParams::new(0.85, 4, k).unwrap(),
            stages: vec![2, 2],
            selection: SelectionStrategy::All,
            ..MelopprParams::paper_defaults()
        }
    }

    #[test]
    fn hybrid_matches_exact_topk_closely() {
        let g = generators::karate_club();
        let engine = HybridMeloppr::new(&g, small_params(8), HybridConfig::default()).unwrap();
        let outcome = engine.query(0).unwrap();
        let exact = exact_top_k(&g, 0, &engine.params().ppr).unwrap();
        let prec = precision_at_k(&outcome.ranking, &exact, 8);
        assert!(prec >= 0.75, "integer-domain precision too low: {prec}");
    }

    #[test]
    fn deterministic_across_runs_and_parallelism() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.15, 4)
            .unwrap();
        let mut params = small_params(20);
        params.selection = SelectionStrategy::TopFraction(0.1);
        let mk = |p: usize| {
            let config = HybridConfig {
                accel: AcceleratorConfig {
                    parallelism: p,
                    ..AcceleratorConfig::default()
                },
                ..HybridConfig::default()
            };
            HybridMeloppr::new(&g, params.clone(), config)
                .unwrap()
                .query(9)
                .unwrap()
        };
        let a = mk(4);
        let b = mk(4);
        assert_eq!(a, b);
        // Different parallelism: same functional answer, different timing.
        // (On these tiny balls conflicts can eat the parallelism gain, but
        // ideal diffusion cycles never increase when P grows by an integer
        // factor: each P=16 PE owns a subset of some P=4 PE's nodes.)
        let c = mk(16);
        assert_eq!(a.ranking_int, c.ranking_int);
        assert!(c.stats.cycles.diffusion <= a.stats.cycles.diffusion);
    }

    #[test]
    fn latency_components_populated() {
        let g = generators::karate_club();
        let engine = HybridMeloppr::new(&g, small_params(5), HybridConfig::default()).unwrap();
        let outcome = engine.query(0).unwrap();
        let lat = &outcome.latency;
        assert!(lat.host_bfs_ns > 0.0);
        assert!(lat.diffusion_ns > 0.0);
        assert!(lat.data_movement_ns > 0.0);
        assert!(lat.total_ms() > 0.0);
    }

    #[test]
    fn bounded_table_capacity_respected() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.2, 8)
            .unwrap();
        let mut params = small_params(10);
        params.ppr.length = 6;
        params.stages = vec![3, 3];
        params.selection = SelectionStrategy::TopFraction(0.3);
        params.table_factor = Some(1);
        let engine = HybridMeloppr::new(&g, params, HybridConfig::default()).unwrap();
        let outcome = engine.query(3).unwrap();
        assert!(outcome.stats.table_evictions > 0);
        assert!(outcome.ranking_int.len() <= 10);
    }

    #[test]
    fn stats_are_consistent() {
        let g = generators::karate_club();
        let mut params = small_params(5);
        params.selection = SelectionStrategy::TopCount(2);
        let engine = HybridMeloppr::new(&g, params, HybridConfig::default()).unwrap();
        let outcome = engine.query(0).unwrap();
        assert_eq!(outcome.stats.diffusions, 3);
        assert_eq!(outcome.stats.stage_diffusions, vec![1, 2]);
        assert_eq!(outcome.stats.expanded_total, 2);
        assert!(outcome.stats.bram_peak_bytes > 0);
        assert!(outcome.stats.max_ball_nodes > 0);
    }

    #[test]
    fn dequantized_scores_are_probabilities() {
        let g = generators::karate_club();
        let engine = HybridMeloppr::new(&g, small_params(10), HybridConfig::default()).unwrap();
        let outcome = engine.query(0).unwrap();
        for &(_, s) in &outcome.ranking {
            assert!((0.0..=1.0).contains(&s), "score {s} not a probability");
        }
        // Seed keeps the largest mass.
        assert_eq!(outcome.ranking[0].0, 0);
    }

    #[test]
    fn invalid_seed_rejected() {
        let g = generators::path(5).unwrap();
        let engine = HybridMeloppr::new(&g, small_params(3), HybridConfig::default()).unwrap();
        assert!(engine.query(99).is_err());
    }
}

#[cfg(test)]
mod double_buffer_tests {
    use super::*;
    use meloppr_core::{MelopprParams, PprParams, SelectionStrategy};
    use meloppr_graph::generators::corpus::PaperGraph;

    #[test]
    fn double_buffering_hides_transfers_without_changing_results() {
        let g = PaperGraph::G1Citeseer.generate_scaled(0.2, 11).unwrap();
        let params = MelopprParams {
            ppr: PprParams::new(0.85, 6, 20).unwrap(),
            stages: vec![3, 3],
            selection: SelectionStrategy::TopFraction(0.1),
            ..MelopprParams::paper_defaults()
        };
        let run = |db: bool| {
            let config = HybridConfig {
                double_buffered: db,
                ..HybridConfig::default()
            };
            HybridMeloppr::new(&g, params.clone(), config)
                .unwrap()
                .query(4)
                .unwrap()
        };
        let plain = run(false);
        let buffered = run(true);
        assert_eq!(plain.ranking_int, buffered.ranking_int);
        assert_eq!(plain.stats.truncation_loss, buffered.stats.truncation_loss);
        assert!(
            buffered.stats.cycles.data_movement < plain.stats.cycles.data_movement,
            "double buffering should hide transfer cycles: {} vs {}",
            buffered.stats.cycles.data_movement,
            plain.stats.cycles.data_movement
        );
        assert_eq!(
            plain.stats.cycles.diffusion,
            buffered.stats.cycles.diffusion
        );
        assert!(buffered.latency.total_ns() < plain.latency.total_ns());
    }
}
