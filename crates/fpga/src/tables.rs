//! On-chip table models: sub-graph, score and global tables (Fig. 4).
//!
//! Each PE owns three BRAM-backed tables:
//!
//! * a **sub-graph table** — per-node `(first, last)` neighbor addresses
//!   plus the packed neighbor list (`2·|V| + 2·|E|` words);
//! * an **accumulated score table** (`πa`, 2 words/node — id + score);
//! * a **residual score table** (`πr`, 1 word/node).
//!
//! Their byte accounting reproduces the paper's §VI-B formula
//! `BRAM_bytes = 4·(2|V| + 2|E| + 2|V| + |V|)`, which
//! [`meloppr_core::memory::fpga_bram_bytes`] encodes and the tests here
//! cross-check against the structural sizes.
//!
//! The **global score table** keeps the running top-`c·k` integer scores on
//! chip so nothing is transferred to the host between diffusions (§V-B).

use std::collections::BTreeSet;

use meloppr_graph::{FastHashMap, GraphView, NodeId, Subgraph};

/// Bytes per table word (§V-A: 32-bit integers everywhere).
pub const WORD_BYTES: usize = 4;

/// The packed adjacency of one sub-graph as stored in PE BRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubgraphTable {
    first_last: Vec<(u32, u32)>,
    neighbors: Vec<NodeId>,
}

impl SubgraphTable {
    /// Packs a [`Subgraph`] (local ids) into table form.
    pub fn from_subgraph(sub: &Subgraph) -> Self {
        let n = sub.num_nodes();
        let mut first_last = Vec::with_capacity(n);
        let mut neighbors = Vec::with_capacity(sub.num_directed_edges());
        for u in 0..n as NodeId {
            let first = neighbors.len() as u32;
            neighbors.extend_from_slice(sub.neighbors(u));
            first_last.push((first, neighbors.len() as u32));
        }
        SubgraphTable {
            first_last,
            neighbors,
        }
    }

    /// Number of nodes stored.
    pub fn num_nodes(&self) -> usize {
        self.first_last.len()
    }

    /// Neighbor list of local node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let (first, last) = self.first_last[u as usize];
        &self.neighbors[first as usize..last as usize]
    }

    /// BRAM bytes: `(2·|V| + 2·|E|)` 4-byte words — the paper's `Bg`.
    pub fn bytes(&self) -> usize {
        (2 * self.first_last.len() + self.neighbors.len()) * WORD_BYTES
    }
}

/// The accumulated score table `πa` (2 words per node: id + score).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccScoreTable {
    scores: Vec<u32>,
}

impl AccScoreTable {
    /// A zeroed table for `n` nodes.
    pub fn new(n: usize) -> Self {
        AccScoreTable { scores: vec![0; n] }
    }

    /// Current score of local node `u`.
    pub fn get(&self, u: NodeId) -> u32 {
        self.scores[u as usize]
    }

    /// Adds to a node's score, saturating at `u32::MAX`.
    pub fn accumulate(&mut self, u: NodeId, delta: u32) {
        let s = &mut self.scores[u as usize];
        *s = s.saturating_add(delta);
    }

    /// Borrow all scores (local-id indexed).
    pub fn scores(&self) -> &[u32] {
        &self.scores
    }

    /// BRAM bytes: `2·|V|` words — the paper's `Ba`.
    pub fn bytes(&self) -> usize {
        2 * self.scores.len() * WORD_BYTES
    }
}

/// The residual score table `πr` (1 word per node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResScoreTable {
    scores: Vec<u32>,
}

impl ResScoreTable {
    /// A zeroed table for `n` nodes.
    pub fn new(n: usize) -> Self {
        ResScoreTable { scores: vec![0; n] }
    }

    /// Current residual of local node `u`.
    pub fn get(&self, u: NodeId) -> u32 {
        self.scores[u as usize]
    }

    /// Sets a node's residual.
    pub fn set(&mut self, u: NodeId, value: u32) {
        self.scores[u as usize] = value;
    }

    /// Adds to a node's residual, saturating.
    pub fn accumulate(&mut self, u: NodeId, delta: u32) {
        let s = &mut self.scores[u as usize];
        *s = s.saturating_add(delta);
    }

    /// Borrow all residuals (local-id indexed).
    pub fn scores(&self) -> &[u32] {
        &self.scores
    }

    /// Resets every entry to zero (between iterations).
    pub fn clear(&mut self) {
        self.scores.fill(0);
    }

    /// BRAM bytes: `|V|` words — the paper's `Br`.
    pub fn bytes(&self) -> usize {
        self.scores.len() * WORD_BYTES
    }
}

/// The on-chip bounded global score table (integer flavour of
/// [`meloppr_core::GlobalScoreTable`], §V-B).
///
/// Holds at most `capacity = c·k` `(node, score)` entries; a new node
/// competes with the resident minimum. Ties keep the incumbent, matching
/// the "replace only if strictly larger" comparator a hardware min-tracker
/// implements.
#[derive(Debug, Clone, Default)]
pub struct IntGlobalTable {
    capacity: usize,
    scores: FastHashMap<NodeId, u32>,
    index: BTreeSet<(u32, NodeId)>,
    evictions: usize,
}

impl IntGlobalTable {
    /// A table of the given capacity (`c·k`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "global table capacity must be positive");
        IntGlobalTable {
            capacity,
            ..IntGlobalTable::default()
        }
    }

    /// Accumulates `delta` onto `node`, inserting or evicting as needed.
    pub fn add(&mut self, node: NodeId, delta: u32) {
        if delta == 0 {
            return;
        }
        if let Some(&old) = self.scores.get(&node) {
            self.index.remove(&(old, node));
            let new = old.saturating_add(delta);
            self.scores.insert(node, new);
            self.index.insert((new, node));
            return;
        }
        if self.scores.len() >= self.capacity {
            let &(min_score, min_node) = self.index.iter().next().expect("non-empty at cap");
            if delta <= min_score {
                self.evictions += 1;
                return;
            }
            self.index.remove(&(min_score, min_node));
            self.scores.remove(&min_node);
            self.evictions += 1;
        }
        self.scores.insert(node, delta);
        self.index.insert((delta, node));
    }

    /// Current score of a resident node.
    pub fn get(&self, node: NodeId) -> Option<u32> {
        self.scores.get(&node).copied()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Evictions/rejections so far.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// The top-`k` entries, ordered by descending score then ascending
    /// node id.
    pub fn ranking(&self, k: usize) -> Vec<(NodeId, u32)> {
        if k == 0 {
            return Vec::new();
        }
        let mut out: Vec<(NodeId, u32)> = Vec::with_capacity(k);
        let mut boundary: Option<u32> = None;
        for &(score, node) in self.index.iter().rev() {
            if out.len() >= k && boundary != Some(score) {
                break;
            }
            out.push((node, score));
            if out.len() == k {
                boundary = Some(score);
            }
        }
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// BRAM bytes: 2 words per entry at full capacity.
    pub fn bytes(&self) -> usize {
        self.capacity * 2 * WORD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_core::memory::fpga_bram_bytes;
    use meloppr_graph::{bfs_ball, generators};

    fn sample_subgraph() -> Subgraph {
        let g = generators::karate_club();
        let ball = bfs_ball(&g, 0, 2).unwrap();
        Subgraph::extract(&g, &ball).unwrap()
    }

    #[test]
    fn subgraph_table_preserves_adjacency() {
        let sub = sample_subgraph();
        let table = SubgraphTable::from_subgraph(&sub);
        assert_eq!(table.num_nodes(), sub.num_nodes());
        for u in 0..sub.num_nodes() as NodeId {
            assert_eq!(table.neighbors(u), sub.neighbors(u));
        }
    }

    #[test]
    fn per_pe_tables_reproduce_paper_bram_formula() {
        let sub = sample_subgraph();
        let (v, e) = (sub.num_nodes(), sub.num_edges());
        let table = SubgraphTable::from_subgraph(&sub);
        let acc = AccScoreTable::new(v);
        let res = ResScoreTable::new(v);
        let structural = table.bytes() + acc.bytes() + res.bytes();
        assert_eq!(structural, fpga_bram_bytes(v, e));
    }

    #[test]
    fn acc_table_accumulates_and_saturates() {
        let mut acc = AccScoreTable::new(3);
        acc.accumulate(1, 10);
        acc.accumulate(1, 5);
        assert_eq!(acc.get(1), 15);
        acc.accumulate(2, u32::MAX);
        acc.accumulate(2, 1);
        assert_eq!(acc.get(2), u32::MAX);
    }

    #[test]
    fn res_table_set_clear() {
        let mut res = ResScoreTable::new(2);
        res.set(0, 7);
        res.accumulate(0, 3);
        assert_eq!(res.get(0), 10);
        res.clear();
        assert_eq!(res.scores(), &[0, 0]);
    }

    #[test]
    fn global_table_eviction_semantics() {
        let mut t = IntGlobalTable::new(2);
        t.add(1, 50);
        t.add(2, 30);
        t.add(3, 40); // evicts 2
        assert_eq!(t.get(2), None);
        t.add(4, 39); // rejected (min is 40)
        assert_eq!(t.get(4), None);
        assert_eq!(t.evictions(), 2);
        assert_eq!(t.ranking(2), vec![(1, 50), (3, 40)]);
    }

    #[test]
    fn global_table_tie_keeps_incumbent() {
        let mut t = IntGlobalTable::new(1);
        t.add(1, 10);
        t.add(2, 10); // tie: incumbent stays
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn global_table_ranking_tie_order() {
        let mut t = IntGlobalTable::new(10);
        t.add(9, 5);
        t.add(3, 5);
        t.add(7, 8);
        assert_eq!(t.ranking(3), vec![(7, 8), (3, 5), (9, 5)]);
    }

    #[test]
    fn global_table_bytes() {
        let t = IntGlobalTable::new(2000);
        assert_eq!(t.bytes(), 16_000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = IntGlobalTable::new(0);
    }
}
