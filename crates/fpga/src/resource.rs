//! KC705 resource-utilization model (Table I).
//!
//! The paper reports LUT/BRAM utilization of its design on a Xilinx
//! Kintex-7 KC705 (XC7K325T: 203 800 LUTs, 445 BRAM36 blocks) for
//! `P ∈ {1, 2, 4, 8, 16}`. This module reproduces those numbers from a
//! component-level model:
//!
//! * **BRAM** — each PE owns a fixed 20-block table budget (sub-graph +
//!   score tables, double-buffered); the global score table and streaming
//!   buffers take 4 blocks. `blocks(P) = 4 + 20·P` matches Table I within
//!   one block at every published point (4.8/9.9/19.2/36.1/72.8 %).
//! * **LUTs** — control logic plus per-PE diffuser/accumulator plus the
//!   `P×P` write crossbar whose multiplexers grow quadratically:
//!   `luts(P) = 565 + 2009·P + 434·P²`, a least-deviation fit through the
//!   published P = 2/8/16 points (exact there, within ~15 % elsewhere).
//! * **DSP** — ~0: divisions are implemented in logic (§V-A), which the
//!   paper reports as "< 0.1 %".

/// Resource utilization of one configuration, as Table I reports it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUtilization {
    /// Parallelism the estimate is for.
    pub parallelism: usize,
    /// Absolute LUTs used.
    pub luts: usize,
    /// LUT utilization fraction of the device (0–1).
    pub lut_fraction: f64,
    /// Absolute BRAM36 blocks used.
    pub bram_blocks: usize,
    /// BRAM utilization fraction of the device (0–1).
    pub bram_fraction: f64,
    /// DSP utilization fraction (≈ 0, divisions in logic).
    pub dsp_fraction: f64,
}

/// Component-level resource model of the accelerator on a target device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceModel {
    device_luts: usize,
    device_bram_blocks: usize,
    base_luts: usize,
    pe_luts: usize,
    xbar_luts_per_link: usize,
    base_bram_blocks: usize,
    pe_bram_blocks: usize,
}

/// Bytes per BRAM36 block (36 Kbit = 4608 bytes).
pub const BRAM36_BYTES: usize = 4608;

impl ResourceModel {
    /// The Xilinx KC705 (XC7K325T) model calibrated to Table I.
    pub fn kc705() -> Self {
        ResourceModel {
            device_luts: 203_800,
            device_bram_blocks: 445,
            base_luts: 565,
            pe_luts: 2_009,
            xbar_luts_per_link: 434,
            base_bram_blocks: 4,
            pe_bram_blocks: 20,
        }
    }

    /// Estimated utilization at parallelism `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn utilization(&self, p: usize) -> ResourceUtilization {
        assert!(p > 0, "parallelism must be positive");
        let luts = self.base_luts + self.pe_luts * p + self.xbar_luts_per_link * p * p;
        let bram_blocks = self.base_bram_blocks + self.pe_bram_blocks * p;
        ResourceUtilization {
            parallelism: p,
            luts,
            lut_fraction: luts as f64 / self.device_luts as f64,
            bram_blocks,
            bram_fraction: bram_blocks as f64 / self.device_bram_blocks as f64,
            dsp_fraction: 0.0005,
        }
    }

    /// The per-PE sub-graph/score-table capacity in bytes implied by the
    /// per-PE BRAM budget.
    pub fn pe_capacity_bytes(&self) -> usize {
        self.pe_bram_blocks * BRAM36_BYTES
    }

    /// The largest parallelism whose LUT *and* BRAM estimates fit the
    /// device (the reason the paper stops at `P = 16`).
    pub fn max_parallelism(&self) -> usize {
        let mut p = 1;
        while p < 4096 {
            let u = self.utilization(p + 1);
            if u.lut_fraction > 1.0 || u.bram_fraction > 1.0 {
                break;
            }
            p += 1;
        }
        p
    }
}

impl Default for ResourceModel {
    /// Same as [`ResourceModel::kc705`].
    fn default() -> Self {
        ResourceModel::kc705()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I of the paper: (P, LUT %, BRAM %).
    const PAPER_TABLE_I: [(usize, f64, f64); 5] = [
        (1, 0.9, 4.8),
        (2, 3.1, 9.9),
        (4, 8.9, 19.2),
        (8, 21.8, 36.1),
        (16, 70.6, 72.8),
    ];

    #[test]
    fn bram_matches_table_one_closely() {
        let model = ResourceModel::kc705();
        for &(p, _, bram_pct) in &PAPER_TABLE_I {
            let u = model.utilization(p);
            let model_pct = u.bram_fraction * 100.0;
            assert!(
                (model_pct - bram_pct).abs() < 1.0,
                "P={p}: model {model_pct:.1}% vs paper {bram_pct}%"
            );
        }
    }

    #[test]
    fn lut_matches_table_one_shape() {
        let model = ResourceModel::kc705();
        for &(p, lut_pct, _) in &PAPER_TABLE_I {
            let u = model.utilization(p);
            let model_pct = u.lut_fraction * 100.0;
            // Exact at the calibration points P = 2, 8, 16; within ~±2
            // points elsewhere.
            let tol = if matches!(p, 2 | 8 | 16) { 0.2 } else { 2.0 };
            assert!(
                (model_pct - lut_pct).abs() < tol,
                "P={p}: model {model_pct:.1}% vs paper {lut_pct}%"
            );
        }
    }

    #[test]
    fn utilization_grows_superlinearly_in_luts() {
        let model = ResourceModel::kc705();
        let u2 = model.utilization(2);
        let u16 = model.utilization(16);
        // 8x the PEs costs much more than 8x the LUTs (crossbar).
        assert!(u16.luts > 8 * u2.luts);
        // ...but BRAM stays linear-ish.
        assert!(u16.bram_blocks < 9 * u2.bram_blocks);
    }

    #[test]
    fn p32_does_not_fit_kc705() {
        let model = ResourceModel::kc705();
        let u32_ = model.utilization(32);
        assert!(u32_.lut_fraction > 1.0, "P=32 should exceed LUTs");
        let max = model.max_parallelism();
        assert!((16..32).contains(&max), "max parallelism {max}");
    }

    #[test]
    fn pe_capacity_is_twenty_blocks() {
        assert_eq!(ResourceModel::kc705().pe_capacity_bytes(), 20 * 4608);
    }

    #[test]
    fn dsp_usage_negligible() {
        let u = ResourceModel::kc705().utilization(16);
        assert!(u.dsp_fraction < 0.001);
    }

    #[test]
    #[should_panic(expected = "parallelism must be positive")]
    fn zero_parallelism_panics() {
        let _ = ResourceModel::kc705().utilization(0);
    }
}
