//! The diffusion accelerator: functional integer model + cycle-level
//! timing model.
//!
//! [`FpgaAccelerator::run_diffusion`] executes one `GD(l)` on a sub-graph
//! the way the hardware of Fig. 4 does:
//!
//! * **Functional model** — frontier-sparse integer diffusion in the
//!   [`FixedPointFormat`] domain: per frontier node, one multiply-by-α
//!   (shift–multiply) and one integer division by the walk degree; the
//!   truncated shares propagate to neighbor residual banks while the
//!   accumulator folds `(1-α)`-weighted terms into `πa` (Fig. 3(b)).
//! * **Timing model** — per iteration, each PE's diffuser issues one
//!   write per owned frontier node + one per outgoing arc;
//!   [`simulate_bank_conflicts`](crate::scheduler::simulate_bank_conflicts)
//!   arbitrates same-bank writes cycle by cycle. Ideal cycles count as
//!   *diffusion*, stalls as *scheduling* (the Fig. 5 split).
//!
//! The functional result is bit-exact deterministic and independent of
//! `P`; only the timing depends on the parallelism.

use meloppr_graph::{GraphView, NodeId, Subgraph};

use crate::error::{FpgaError, Result};
use crate::fixed_point::{DegreeScale, FixedPointFormat};
use crate::latency::CycleBreakdown;
use crate::pe::PeArray;
use crate::resource::ResourceModel;
use crate::scheduler::simulate_bank_conflicts;

/// Configuration of the accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Number of PEs `P` (the paper sweeps 1–16; uses 16 for Fig. 7).
    pub parallelism: usize,
    /// Clock frequency in MHz (the paper's KC705 design runs at 100 MHz).
    pub clock_mhz: f64,
    /// Words moved per cycle over the host streaming interface.
    pub stream_words_per_cycle: usize,
    /// Fixed-point shift amount `q` (paper: 10).
    pub q: u32,
    /// Policy for the fixed-point scale constant `d` (paper: half the
    /// maximum degree).
    pub degree_scale: DegreeScale,
    /// Per-PE BRAM capacity in bytes (defaults to the KC705 resource
    /// model's per-PE budget).
    pub pe_capacity_bytes: usize,
    /// Pipeline fill/drain cycles charged per diffusion iteration.
    pub iteration_overhead_cycles: u64,
}

impl Default for AcceleratorConfig {
    /// The paper's evaluation configuration: `P = 16`, 100 MHz, `q = 10`,
    /// `d = max_degree / 2`.
    fn default() -> Self {
        AcceleratorConfig {
            parallelism: 16,
            clock_mhz: 100.0,
            stream_words_per_cycle: 2,
            q: 10,
            degree_scale: DegreeScale::HalfMax,
            pe_capacity_bytes: ResourceModel::kc705().pe_capacity_bytes(),
            iteration_overhead_cycles: 4,
        }
    }
}

impl AcceleratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidConfig`] when any field is out of
    /// domain.
    pub fn validate(&self) -> Result<()> {
        if self.parallelism == 0 {
            return Err(FpgaError::InvalidConfig {
                reason: "parallelism must be >= 1".into(),
            });
        }
        if !self.clock_mhz.is_finite() || self.clock_mhz <= 0.0 {
            return Err(FpgaError::InvalidConfig {
                reason: format!("clock must be positive, got {} MHz", self.clock_mhz),
            });
        }
        if self.stream_words_per_cycle == 0 {
            return Err(FpgaError::InvalidConfig {
                reason: "streaming interface must move >= 1 word per cycle".into(),
            });
        }
        if self.pe_capacity_bytes == 0 {
            return Err(FpgaError::InvalidConfig {
                reason: "per-PE capacity must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Result of one accelerated diffusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpgaDiffusionResult {
    /// Accumulated integer scores `πa` per local node.
    pub accumulated: Vec<u32>,
    /// Residual integer scores per local node. Unlike the float kernel's
    /// `W^l·S0`, these carry the `α^l` factor already (the hardware keeps
    /// `α^k·W^k·S0` in the residual table), so a next-stage task's weight
    /// is exactly `weighted(task_weight, residual[v])`.
    pub residual: Vec<u32>,
    /// Diffusion vs scheduling cycles (data movement is accounted by the
    /// host).
    pub cycles: CycleBreakdown,
    /// Integer mass lost to truncation (division remainders and shift
    /// round-down) — the source of the fixed-point precision loss.
    pub truncation_loss: u64,
}

/// The diffusion accelerator (PE array + scheduler + accumulators).
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaAccelerator {
    config: AcceleratorConfig,
}

impl FpgaAccelerator {
    /// Creates an accelerator after validating its configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidConfig`] for invalid configurations.
    pub fn new(config: AcceleratorConfig) -> Result<Self> {
        config.validate()?;
        Ok(FpgaAccelerator { config })
    }

    /// The accelerator's configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Cycles to stream a sub-graph's table image
    /// (`2·|V| + 2·|E|` words) onto the device.
    pub fn stream_in_cycles(&self, sub: &Subgraph) -> u64 {
        let words = 2 * sub.num_nodes() + sub.num_directed_edges();
        (words as u64).div_ceil(self.config.stream_words_per_cycle as u64)
    }

    /// Cycles to stream `entries` `(node, score)` pairs back to the host.
    pub fn stream_out_cycles(&self, entries: usize) -> u64 {
        (2 * entries as u64).div_ceil(self.config.stream_words_per_cycle as u64)
    }

    /// Runs one integer diffusion of `iterations` steps from local seed 0
    /// with initial score `init` (usually `fmt.max_value()`; the task
    /// weight is applied at aggregation time).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CapacityExceeded`] if the sub-graph does not
    /// fit the PE array's BRAM.
    pub fn run_diffusion(
        &self,
        sub: &Subgraph,
        init: u32,
        iterations: usize,
        fmt: &FixedPointFormat,
    ) -> Result<FpgaDiffusionResult> {
        let p = self.config.parallelism;
        let array = PeArray::partition(sub, p);
        let required = array.max_pe_bytes();
        if required > self.config.pe_capacity_bytes {
            return Err(FpgaError::CapacityExceeded {
                required,
                available: self.config.pe_capacity_bytes,
            });
        }

        let n = sub.num_nodes();
        let mut power = vec![0u32; n]; // α^k-scaled W^k S0
        let mut next = vec![0u32; n];
        let mut accumulated = vec![0u32; n];
        let mut frontier: Vec<NodeId> = vec![sub.seed_local()];
        power[sub.seed_local() as usize] = init;

        let mut cycles = CycleBreakdown::default();
        let mut truncation_loss: u64 = 0;
        let mut next_frontier: Vec<NodeId> = Vec::new();

        for _ in 0..iterations {
            // Timing: the hardware scans every node of the sub-graph table
            // each iteration (it keeps no frontier list) and issues writes
            // only for nodes holding mass; arbitrate the resulting streams.
            let streams = array.streams_for_scan(sub, |u| power[u as usize] > 0);
            let sched = simulate_bank_conflicts(&streams, p);
            cycles.diffusion += sched.ideal_cycles + self.config.iteration_overhead_cycles;
            cycles.scheduling += sched.stall_cycles;

            // Function: accumulate (1-α)-weighted term, then propagate the
            // α-weighted shares.
            for &u in &frontier {
                let x = power[u as usize];
                let one_minus = fmt.mul_one_minus_alpha(x);
                accumulated[u as usize] = accumulated[u as usize].saturating_add(one_minus);
                // Both shifts truncate, so x >= one_minus + alpha_part; the
                // difference is the split's rounding loss (at most 2).
                let alpha_part = fmt.mul_alpha(x);
                truncation_loss += (x - one_minus - alpha_part) as u64;

                let deg = sub.walk_degree(u);
                if deg == 0 {
                    if next[u as usize] == 0 && alpha_part > 0 {
                        next_frontier.push(u);
                    }
                    next[u as usize] = next[u as usize].saturating_add(alpha_part);
                    continue;
                }
                let share = alpha_part / deg;
                let nbrs = sub.neighbors(u);
                truncation_loss +=
                    (alpha_part as u64).saturating_sub(share as u64 * nbrs.len() as u64);
                if share == 0 {
                    continue;
                }
                for &v in nbrs {
                    if next[v as usize] == 0 {
                        next_frontier.push(v);
                    }
                    next[v as usize] = next[v as usize].saturating_add(share);
                }
            }
            for &u in &frontier {
                power[u as usize] = 0;
            }
            std::mem::swap(&mut power, &mut next);
            std::mem::swap(&mut frontier, &mut next_frontier);
            next_frontier.clear();
            // Dead frontier entries (share underflow) keep zero scores and
            // simply produce no writes next iteration.
        }

        // Final term: πa += α^l·W^l·S0 (the residual table content).
        for &u in &frontier {
            accumulated[u as usize] = accumulated[u as usize].saturating_add(power[u as usize]);
        }

        Ok(FpgaDiffusionResult {
            accumulated,
            residual: power,
            cycles,
            truncation_loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_core::diffusion::{diffuse_from_seed, DiffusionConfig};
    use meloppr_graph::{bfs_ball, generators};

    fn ball(depth: u32) -> Subgraph {
        let g = generators::karate_club();
        let b = bfs_ball(&g, 0, depth).unwrap();
        Subgraph::extract(&g, &b).unwrap()
    }

    fn accel(p: usize) -> FpgaAccelerator {
        FpgaAccelerator::new(AcceleratorConfig {
            parallelism: p,
            ..AcceleratorConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn integer_diffusion_tracks_float_kernel() {
        let sub = ball(3);
        let fmt = FixedPointFormat::new(16, 10_000, 0.85, 10).unwrap();
        let hw = accel(4)
            .run_diffusion(&sub, fmt.max_value(), 3, &fmt)
            .unwrap();
        // Compare against the float kernel run with the *effective* alpha
        // (the αp/2^q approximation is part of the design, not an error).
        let cfg = DiffusionConfig::new(fmt.effective_alpha(), 3).unwrap();
        let float = diffuse_from_seed(&sub, sub.seed_local(), cfg).unwrap();
        for u in 0..sub.num_nodes() {
            let hw_p = fmt.dequantize(hw.accumulated[u]);
            let delta = (hw_p - float.accumulated[u]).abs();
            assert!(
                delta < 0.01,
                "node {u}: hw {hw_p} vs float {}",
                float.accumulated[u]
            );
        }
    }

    #[test]
    fn functional_result_independent_of_parallelism() {
        let sub = ball(2);
        let fmt = FixedPointFormat::new(16, 5_000, 0.85, 10).unwrap();
        let base = accel(1)
            .run_diffusion(&sub, fmt.max_value(), 2, &fmt)
            .unwrap();
        for p in [2, 4, 8, 16] {
            let r = accel(p)
                .run_diffusion(&sub, fmt.max_value(), 2, &fmt)
                .unwrap();
            assert_eq!(r.accumulated, base.accumulated, "P = {p}");
            assert_eq!(r.residual, base.residual, "P = {p}");
        }
    }

    #[test]
    fn more_parallelism_fewer_diffusion_cycles() {
        let sub = ball(3);
        let fmt = FixedPointFormat::new(16, 10_000, 0.85, 10).unwrap();
        let c1 = accel(1)
            .run_diffusion(&sub, fmt.max_value(), 3, &fmt)
            .unwrap()
            .cycles;
        let c8 = accel(8)
            .run_diffusion(&sub, fmt.max_value(), 3, &fmt)
            .unwrap()
            .cycles;
        assert!(
            c8.total() < c1.total(),
            "P=8 ({}) should beat P=1 ({})",
            c8.total(),
            c1.total()
        );
        // P=1 never stalls on conflicts.
        assert_eq!(c1.scheduling, 0);
        assert!(c8.scheduling > 0);
    }

    #[test]
    fn integer_mass_is_conserved_up_to_truncation() {
        let sub = ball(2);
        let fmt = FixedPointFormat::new(16, 5_000, 0.85, 10).unwrap();
        let r = accel(2)
            .run_diffusion(&sub, fmt.max_value(), 2, &fmt)
            .unwrap();
        let acc_total: u64 = r.accumulated.iter().map(|&x| x as u64).sum();
        assert!(acc_total <= fmt.max_value() as u64);
        assert!(
            acc_total + r.truncation_loss + 64 >= fmt.max_value() as u64,
            "acc {acc_total} + loss {} far from Max {}",
            r.truncation_loss,
            fmt.max_value()
        );
    }

    #[test]
    fn capacity_violation_detected() {
        let sub = ball(3);
        let tiny = FpgaAccelerator::new(AcceleratorConfig {
            parallelism: 1,
            pe_capacity_bytes: 64,
            ..AcceleratorConfig::default()
        })
        .unwrap();
        let fmt = FixedPointFormat::new(16, 10_000, 0.85, 10).unwrap();
        assert!(matches!(
            tiny.run_diffusion(&sub, fmt.max_value(), 3, &fmt),
            Err(FpgaError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn streaming_cycle_model() {
        let sub = ball(2);
        let a = accel(4);
        let words = 2 * sub.num_nodes() + sub.num_directed_edges();
        assert_eq!(a.stream_in_cycles(&sub), (words as u64).div_ceil(2));
        assert_eq!(a.stream_out_cycles(200), 200);
    }

    #[test]
    fn config_validation() {
        assert!(FpgaAccelerator::new(AcceleratorConfig {
            parallelism: 0,
            ..AcceleratorConfig::default()
        })
        .is_err());
        assert!(FpgaAccelerator::new(AcceleratorConfig {
            clock_mhz: 0.0,
            ..AcceleratorConfig::default()
        })
        .is_err());
        assert!(FpgaAccelerator::new(AcceleratorConfig {
            stream_words_per_cycle: 0,
            ..AcceleratorConfig::default()
        })
        .is_err());
    }

    #[test]
    fn zero_iterations_is_identity() {
        let sub = ball(1);
        let fmt = FixedPointFormat::new(16, 1_000, 0.85, 10).unwrap();
        let r = accel(2)
            .run_diffusion(&sub, fmt.max_value(), 0, &fmt)
            .unwrap();
        assert_eq!(r.accumulated[0], fmt.max_value());
        assert_eq!(r.residual[0], fmt.max_value());
        assert_eq!(r.cycles.total(), 0);
    }
}
