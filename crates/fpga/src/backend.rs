//! The CPU+FPGA hybrid engine behind the unified query API.
//!
//! [`FpgaHybrid`] adapts [`HybridMeloppr`] to
//! [`meloppr_core::backend::PprBackend`], so the accelerator simulator
//! participates in trait-object serving and budget routing alongside the
//! CPU solvers. Accelerator failures are folded into the core error
//! taxonomy: every [`FpgaError`] surfaces as
//! [`BackendError::Accelerator`](meloppr_core::BackendError::Accelerator)
//! (graph errors stay [`PprError::Graph`](meloppr_core::PprError::Graph)).

use meloppr_core::backend::{
    estimate_staged_work, staged_precision_heuristic, BackendCaps, BackendKind, CostEstimate,
    PprBackend, QueryOutcome, QueryRequest, QueryStats, WorkProfile,
};
use meloppr_core::memory::{fpga_bram_bytes, fpga_global_table_bytes};
use meloppr_core::{
    BackendError, MelopprParams, PprError, QueryWorkspace, StageStats, WorkspacePool,
};
use meloppr_graph::GraphView;

use crate::error::FpgaError;
use crate::host::{HybridConfig, HybridMeloppr, HybridOutcome};
use crate::latency::cycles_to_ns;

impl From<FpgaError> for PprError {
    fn from(err: FpgaError) -> Self {
        match err {
            FpgaError::Graph(g) => PprError::Graph(g),
            other => PprError::Backend(BackendError::Accelerator {
                reason: other.to_string(),
            }),
        }
    }
}

/// The simulated CPU+FPGA platform (§V) as a unified-API backend.
///
/// Rankings are bit-identical to calling [`HybridMeloppr::query`]
/// directly; [`QueryStats::latency_estimate_ns`] carries the simulator's
/// authoritative end-to-end latency model (the number Fig. 5/7 report).
///
/// # Examples
///
/// ```
/// use meloppr_core::backend::{PprBackend, QueryRequest};
/// use meloppr_core::MelopprParams;
/// use meloppr_fpga::{FpgaHybrid, HybridConfig};
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_fpga::FpgaError> {
/// let g = generators::karate_club();
/// let mut params = MelopprParams::paper_defaults();
/// params.ppr.k = 5;
/// let backend = FpgaHybrid::new(&g, params, HybridConfig::default())?;
/// let outcome = backend.query(&QueryRequest::new(0)).expect("query");
/// assert!(outcome.stats.latency_estimate_ns.unwrap() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FpgaHybrid<'g, G: GraphView + ?Sized> {
    graph: &'g G,
    params: MelopprParams,
    config: HybridConfig,
    engine: HybridMeloppr<'g, G>,
    profile: WorkProfile,
    pool: WorkspacePool,
}

impl<'g, G: GraphView + ?Sized> FpgaHybrid<'g, G> {
    /// Creates the backend: validates parameters/configuration, derives
    /// the fixed-point format and probes ball growth for cost estimates.
    ///
    /// # Errors
    ///
    /// As [`HybridMeloppr::new`].
    pub fn new(graph: &'g G, params: MelopprParams, config: HybridConfig) -> crate::Result<Self> {
        let engine = HybridMeloppr::new(graph, params.clone(), config)?;
        let profile = WorkProfile::probe_default(graph, params.ppr.length as u32)
            .map_err(|e| FpgaError::Ppr(e.to_string()))?;
        Ok(FpgaHybrid {
            graph,
            params,
            config,
            engine,
            profile,
            pool: WorkspacePool::new(),
        })
    }

    /// The backend's configured base parameters.
    pub fn params(&self) -> &MelopprParams {
        &self.params
    }

    /// The underlying simulator engine (format inspection etc.).
    pub fn engine(&self) -> &HybridMeloppr<'g, G> {
        &self.engine
    }

    fn effective_meloppr(&self, req: &QueryRequest) -> meloppr_core::Result<MelopprParams> {
        let ppr = req.effective_params(&self.params.ppr)?;
        if ppr.length != self.params.ppr.length {
            // Restaging plus re-deriving the fixed-point format per query
            // is not what the accelerator is for; refuse explicitly.
            return Err(BackendError::Unsupported {
                backend: "fpga-hybrid",
                reason: format!(
                    "per-query length override ({} -> {}) requires reconfiguring the \
                     accelerator; create a dedicated FpgaHybrid instead",
                    self.params.ppr.length, ppr.length
                ),
            }
            .into());
        }
        let params = MelopprParams {
            ppr,
            ..self.params.clone()
        };
        params.validate()?;
        Ok(params)
    }

    fn normalize(&self, outcome: HybridOutcome) -> QueryOutcome {
        let stats = &outcome.stats;
        let stages: Vec<StageStats> = stats
            .stage_diffusions
            .iter()
            .map(|&diffusions| StageStats {
                diffusions,
                ..StageStats::default()
            })
            .collect();
        QueryOutcome {
            stats: QueryStats {
                backend: BackendKind::FpgaHybrid,
                stages,
                total_diffusions: stats.diffusions,
                bfs_edges_scanned: 0, // host BFS cost is carried in ns below
                diffusion_edge_updates: 0,
                random_walk_steps: 0,
                nodes_touched: 0,
                peak_memory_bytes: stats.bram_peak_bytes,
                // The largest single task on chip: the peak ball's packed
                // sub-graph + score tables (Table II's FPGA column).
                peak_task_memory_bytes: fpga_bram_bytes(stats.max_ball_nodes, stats.max_ball_edges),
                aggregate_entries: outcome.ranking_int.len(),
                table_evictions: stats.table_evictions,
                memory_limited: false,
                // The accelerator always runs Q-format arithmetic; report
                // the derived fraction width as the executed rung.
                precision_class: meloppr_core::PrecisionClass::Fixed(self.engine.format().q() as u8),
                latency_estimate_ns: Some(outcome.latency.total_ns()),
                host_latency_ns: Some(outcome.latency.host_bfs_ns),
            },
            ranking: outcome.ranking,
        }
    }
}

impl<G: GraphView + ?Sized> PprBackend for FpgaHybrid<'_, G> {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            kind: BackendKind::FpgaHybrid,
            exact: false, // fixed-point truncation is always in play
            deterministic: true,
            accelerated: true,
            batch_aware: true,
        }
    }

    fn estimate(&self, req: &QueryRequest) -> meloppr_core::Result<CostEstimate> {
        let params = self.effective_meloppr(req)?;
        let work = estimate_staged_work(&self.profile, &params);
        let accel = &self.config.accel;
        // Diffusion cycles: each PE processes its share of the ball's
        // adjacency per iteration; scheduling conflicts and transfers add
        // a constant-factor overhead the simulator measures precisely —
        // 2x is a routing-grade bound.
        let parallelism = accel.parallelism.max(1) as f64;
        let compute_cycles = 2.0 * (work.diffusion_edges / parallelism + work.nodes_touched);
        let host = &self.config.host;
        let host_ns = host.fixed_overhead_ns
            + work.bfs_edges * host.ns_per_bfs_edge
            + work.nodes_touched * host.ns_per_extract_node;
        let table_bytes = fpga_global_table_bytes(params.table_factor.unwrap_or(10), params.ppr.k);
        Ok(CostEstimate {
            latency_ns: host_ns + cycles_to_ns(compute_cycles as u64, accel.clock_mhz),
            peak_memory_bytes: fpga_bram_bytes(work.peak_ball.nodes, work.peak_ball.edges)
                + table_bytes,
            // Fixed-point quantization costs a couple of points on top of
            // the staged heuristic (§V-A: < 4 % at the lossiest scaling).
            expected_precision: (staged_precision_heuristic(&params) - 0.02).max(0.0),
        })
    }

    fn workspace_pool(&self) -> Option<&WorkspacePool> {
        Some(&self.pool)
    }

    fn query_with(
        &self,
        req: &QueryRequest,
        ws: &mut QueryWorkspace,
    ) -> meloppr_core::Result<QueryOutcome> {
        let outcome = if req.k.is_none() && req.overrides == Default::default() {
            self.engine.query_with(req.seed, ws)?
        } else {
            let params = self.effective_meloppr(req)?;
            HybridMeloppr::new(self.graph, params, self.config)?.query_with(req.seed, ws)?
        };
        Ok(self.normalize(outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_core::{PprParams, SelectionStrategy};
    use meloppr_graph::generators;

    fn params() -> MelopprParams {
        MelopprParams {
            ppr: PprParams::new(0.85, 4, 8).unwrap(),
            stages: vec![2, 2],
            selection: SelectionStrategy::All,
            ..MelopprParams::paper_defaults()
        }
    }

    #[test]
    fn matches_direct_engine_bit_for_bit() {
        let g = generators::karate_club();
        let backend = FpgaHybrid::new(&g, params(), HybridConfig::default()).unwrap();
        let direct = HybridMeloppr::new(&g, params(), HybridConfig::default())
            .unwrap()
            .query(0)
            .unwrap();
        let via_trait = backend.query(&QueryRequest::new(0)).unwrap();
        assert_eq!(via_trait.ranking, direct.ranking);
        assert_eq!(
            via_trait.stats.latency_estimate_ns,
            Some(direct.latency.total_ns())
        );
        assert_eq!(
            via_trait.stats.peak_memory_bytes,
            direct.stats.bram_peak_bytes
        );
    }

    #[test]
    fn k_override_serves_smaller_rankings() {
        let g = generators::karate_club();
        let backend = FpgaHybrid::new(&g, params(), HybridConfig::default()).unwrap();
        let outcome = backend.query(&QueryRequest::new(0).with_k(3)).unwrap();
        assert_eq!(outcome.ranking.len(), 3);
    }

    #[test]
    fn length_override_is_refused_with_taxonomy_error() {
        let g = generators::karate_club();
        let backend = FpgaHybrid::new(&g, params(), HybridConfig::default()).unwrap();
        let err = backend
            .query(&QueryRequest::new(0).with_length(2))
            .unwrap_err();
        assert!(matches!(
            err,
            PprError::Backend(BackendError::Unsupported {
                backend: "fpga-hybrid",
                ..
            })
        ));
    }

    #[test]
    fn accelerator_errors_fold_into_ppr_error() {
        let converted: PprError = FpgaError::CapacityExceeded {
            required: 10,
            available: 1,
        }
        .into();
        assert!(matches!(
            converted,
            PprError::Backend(BackendError::Accelerator { .. })
        ));
        let graph_err: PprError = FpgaError::Graph(meloppr_graph::GraphError::EmptyGraph).into();
        assert!(matches!(graph_err, PprError::Graph(_)));
    }

    #[test]
    fn estimate_reports_accelerated_costs() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.15, 4)
            .unwrap();
        let backend = FpgaHybrid::new(&g, params(), HybridConfig::default()).unwrap();
        let est = backend.estimate(&QueryRequest::new(0)).unwrap();
        assert!(est.latency_ns > 0.0);
        assert!(est.peak_memory_bytes > 0);
        assert!(est.expected_precision < 1.0);
        assert!(backend.capabilities().accelerated);
    }
}
