//! Processing-element array: node partitioning and write-stream
//! generation.
//!
//! The accelerator instantiates `P` PEs (Fig. 4). Sub-graph nodes are
//! interleaved across PEs (`owner = local_id mod P`): each PE's sub-graph
//! table holds the adjacency of its own nodes, and each PE's score banks
//! hold its own nodes' `πa`/`πr` entries. A diffuser walks its *own*
//! nodes' edges but writes to the score bank of each *neighbor's* owner —
//! the cross-PE traffic the scheduler must arbitrate.

use meloppr_graph::{GraphView, NodeId, Subgraph};

use crate::tables::WORD_BYTES;

/// Which PE owns a local node id under interleaved partitioning.
pub fn owner(node: NodeId, parallelism: usize) -> usize {
    debug_assert!(parallelism > 0);
    node as usize % parallelism
}

/// Static partition of one sub-graph across `P` PEs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeArray {
    parallelism: usize,
    /// Per-PE owned node count.
    nodes_per_pe: Vec<usize>,
    /// Per-PE directed adjacency entries (edges its diffuser issues).
    arcs_per_pe: Vec<usize>,
}

impl PeArray {
    /// Partitions `sub` across `parallelism` PEs.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism == 0`.
    pub fn partition(sub: &Subgraph, parallelism: usize) -> Self {
        assert!(parallelism > 0, "parallelism must be positive");
        let mut nodes_per_pe = vec![0usize; parallelism];
        let mut arcs_per_pe = vec![0usize; parallelism];
        for u in 0..sub.num_nodes() as NodeId {
            let pe = owner(u, parallelism);
            nodes_per_pe[pe] += 1;
            arcs_per_pe[pe] += sub.neighbors(u).len();
        }
        PeArray {
            parallelism,
            nodes_per_pe,
            arcs_per_pe,
        }
    }

    /// Number of PEs.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Nodes owned by PE `pe`.
    pub fn nodes(&self, pe: usize) -> usize {
        self.nodes_per_pe[pe]
    }

    /// Directed adjacency entries issued by PE `pe`'s diffuser.
    pub fn arcs(&self, pe: usize) -> usize {
        self.arcs_per_pe[pe]
    }

    /// BRAM bytes resident in PE `pe`: its slice of the sub-graph table
    /// (`2` address words per node + its arcs) plus its slice of the score
    /// tables (`2 + 1` words per node), mirroring the paper's formula at
    /// per-PE granularity.
    pub fn pe_bytes(&self, pe: usize) -> usize {
        let v = self.nodes_per_pe[pe];
        let arcs = self.arcs_per_pe[pe];
        (2 * v + arcs + 2 * v + v) * WORD_BYTES
    }

    /// The largest per-PE BRAM requirement (what must fit the device's
    /// per-PE capacity).
    pub fn max_pe_bytes(&self) -> usize {
        (0..self.parallelism)
            .map(|p| self.pe_bytes(p))
            .max()
            .unwrap_or(0)
    }

    /// Builds per-PE write streams for one iteration: for every frontier
    /// node (in order), its owner PE first issues one own-bank bookkeeping
    /// write (degree fetch + accumulator update), then one residual write
    /// per neighbor targeting the neighbor's owner bank.
    pub fn streams_for_frontier(&self, sub: &Subgraph, frontier: &[NodeId]) -> Vec<Vec<u32>> {
        let mut streams: Vec<Vec<u32>> = vec![Vec::new(); self.parallelism];
        for &u in frontier {
            let pe = owner(u, self.parallelism);
            streams[pe].push(pe as u32);
            for &v in sub.neighbors(u) {
                streams[pe].push(owner(v, self.parallelism) as u32);
            }
        }
        streams
    }

    /// Builds per-PE streams for one *hardware* iteration: each diffuser
    /// scans its whole slice of the sub-graph table (one own-bank cycle
    /// per owned node — the hardware has no frontier list), and issues one
    /// cross-bank residual write per outgoing arc of every node whose
    /// current score is non-zero (`active`).
    pub fn streams_for_scan<F>(&self, sub: &Subgraph, active: F) -> Vec<Vec<u32>>
    where
        F: Fn(NodeId) -> bool,
    {
        let mut streams: Vec<Vec<u32>> = vec![Vec::new(); self.parallelism];
        for u in 0..sub.num_nodes() as NodeId {
            let pe = owner(u, self.parallelism);
            streams[pe].push(pe as u32);
            if active(u) {
                for &v in sub.neighbors(u) {
                    streams[pe].push(owner(v, self.parallelism) as u32);
                }
            }
        }
        streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_core::memory::fpga_bram_bytes;
    use meloppr_graph::{bfs_ball, generators};

    fn sample() -> Subgraph {
        let g = generators::karate_club();
        let ball = bfs_ball(&g, 0, 2).unwrap();
        Subgraph::extract(&g, &ball).unwrap()
    }

    #[test]
    fn owner_interleaves() {
        assert_eq!(owner(0, 4), 0);
        assert_eq!(owner(5, 4), 1);
        assert_eq!(owner(7, 4), 3);
        assert_eq!(owner(9, 1), 0);
    }

    #[test]
    fn partition_conserves_nodes_and_arcs() {
        let sub = sample();
        for p in [1, 2, 4, 8] {
            let array = PeArray::partition(&sub, p);
            let nodes: usize = (0..p).map(|i| array.nodes(i)).sum();
            let arcs: usize = (0..p).map(|i| array.arcs(i)).sum();
            assert_eq!(nodes, sub.num_nodes());
            assert_eq!(arcs, sub.num_directed_edges());
        }
    }

    #[test]
    fn pe_bytes_sum_to_paper_formula() {
        let sub = sample();
        for p in [1, 3, 5] {
            let array = PeArray::partition(&sub, p);
            let total: usize = (0..p).map(|i| array.pe_bytes(i)).sum();
            assert_eq!(
                total,
                fpga_bram_bytes(sub.num_nodes(), sub.num_edges()),
                "P = {p}"
            );
        }
    }

    #[test]
    fn single_pe_holds_everything() {
        let sub = sample();
        let array = PeArray::partition(&sub, 1);
        assert_eq!(
            array.max_pe_bytes(),
            fpga_bram_bytes(sub.num_nodes(), sub.num_edges())
        );
    }

    #[test]
    fn streams_cover_frontier_work() {
        let sub = sample();
        let array = PeArray::partition(&sub, 4);
        let frontier: Vec<NodeId> = (0..sub.num_nodes() as NodeId).collect();
        let streams = array.streams_for_frontier(&sub, &frontier);
        let total: usize = streams.iter().map(|s| s.len()).sum();
        // One bookkeeping write per node + one write per arc.
        assert_eq!(total, sub.num_nodes() + sub.num_directed_edges());
        for (pe, s) in streams.iter().enumerate() {
            for &bank in s {
                assert!((bank as usize) < 4, "PE {pe} targets bad bank {bank}");
            }
        }
    }

    #[test]
    fn empty_frontier_empty_streams() {
        let sub = sample();
        let array = PeArray::partition(&sub, 2);
        let streams = array.streams_for_frontier(&sub, &[]);
        assert!(streams.iter().all(|s| s.is_empty()));
    }

    #[test]
    #[should_panic(expected = "parallelism must be positive")]
    fn zero_parallelism_panics() {
        let _ = PeArray::partition(&sample(), 0);
    }
}
