//! Cycle and wall-clock latency accounting (Fig. 5 / Fig. 7 breakdowns).

use std::ops::{Add, AddAssign};

/// FPGA-side cycle counts of one or more diffusions, split the way Fig. 5
/// reports them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// Ideal pipelined diffusion cycles (every PE streaming one edge per
    /// cycle, no conflicts).
    pub diffusion: u64,
    /// Stall cycles introduced by the scheduler resolving same-bank write
    /// conflicts between diffusers.
    pub scheduling: u64,
    /// Cycles spent streaming sub-graphs in and results/next-stage nodes
    /// out over the host interface.
    pub data_movement: u64,
}

impl CycleBreakdown {
    /// Total FPGA cycles.
    pub fn total(&self) -> u64 {
        self.diffusion + self.scheduling + self.data_movement
    }
}

impl Add for CycleBreakdown {
    type Output = CycleBreakdown;

    fn add(self, rhs: CycleBreakdown) -> CycleBreakdown {
        CycleBreakdown {
            diffusion: self.diffusion + rhs.diffusion,
            scheduling: self.scheduling + rhs.scheduling,
            data_movement: self.data_movement + rhs.data_movement,
        }
    }
}

impl AddAssign for CycleBreakdown {
    fn add_assign(&mut self, rhs: CycleBreakdown) {
        *self = *self + rhs;
    }
}

/// Converts FPGA cycles at `clock_mhz` into nanoseconds.
pub fn cycles_to_ns(cycles: u64, clock_mhz: f64) -> f64 {
    cycles as f64 * 1000.0 / clock_mhz
}

/// End-to-end latency of a hybrid CPU+FPGA query in nanoseconds, split
/// into the four components of Fig. 5 / Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Host-side BFS extraction and sub-graph reorganization.
    pub host_bfs_ns: f64,
    /// FPGA diffusion (ideal pipelined work).
    pub diffusion_ns: f64,
    /// FPGA scheduling stalls.
    pub scheduling_ns: f64,
    /// CPU↔FPGA data movement.
    pub data_movement_ns: f64,
}

impl LatencyBreakdown {
    /// Builds the wall-clock breakdown from FPGA cycles plus host time.
    pub fn from_cycles(cycles: CycleBreakdown, clock_mhz: f64, host_bfs_ns: f64) -> Self {
        LatencyBreakdown {
            host_bfs_ns,
            diffusion_ns: cycles_to_ns(cycles.diffusion, clock_mhz),
            scheduling_ns: cycles_to_ns(cycles.scheduling, clock_mhz),
            data_movement_ns: cycles_to_ns(cycles.data_movement, clock_mhz),
        }
    }

    /// Total latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.host_bfs_ns + self.diffusion_ns + self.scheduling_ns + self.data_movement_ns
    }

    /// Total latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns() / 1e6
    }

    /// Fraction of the total spent in host BFS (the light-blue bars of
    /// Fig. 7).
    pub fn bfs_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0.0 {
            0.0
        } else {
            self.host_bfs_ns / total
        }
    }

    /// Fraction of the total spent in scheduler stalls.
    pub fn scheduling_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0.0 {
            0.0
        } else {
            self.scheduling_ns / total
        }
    }
}

impl Add for LatencyBreakdown {
    type Output = LatencyBreakdown;

    fn add(self, rhs: LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            host_bfs_ns: self.host_bfs_ns + rhs.host_bfs_ns,
            diffusion_ns: self.diffusion_ns + rhs.diffusion_ns,
            scheduling_ns: self.scheduling_ns + rhs.scheduling_ns,
            data_movement_ns: self.data_movement_ns + rhs.data_movement_ns,
        }
    }
}

impl AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: LatencyBreakdown) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_totals_and_addition() {
        let a = CycleBreakdown {
            diffusion: 100,
            scheduling: 20,
            data_movement: 30,
        };
        let b = CycleBreakdown {
            diffusion: 1,
            scheduling: 2,
            data_movement: 3,
        };
        assert_eq!(a.total(), 150);
        assert_eq!((a + b).total(), 156);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn cycles_convert_at_100mhz() {
        // 100 MHz -> 10 ns per cycle.
        assert!((cycles_to_ns(1, 100.0) - 10.0).abs() < 1e-12);
        assert!((cycles_to_ns(1_000_000, 100.0) - 1e7).abs() < 1e-6);
    }

    #[test]
    fn latency_from_cycles() {
        let cycles = CycleBreakdown {
            diffusion: 1000,
            scheduling: 500,
            data_movement: 250,
        };
        let lat = LatencyBreakdown::from_cycles(cycles, 100.0, 2500.0);
        assert!((lat.diffusion_ns - 10_000.0).abs() < 1e-9);
        assert!((lat.scheduling_ns - 5_000.0).abs() < 1e-9);
        assert!((lat.data_movement_ns - 2_500.0).abs() < 1e-9);
        assert!((lat.total_ns() - 20_000.0).abs() < 1e-9);
        assert!((lat.total_ms() - 0.02).abs() < 1e-12);
        assert!((lat.bfs_fraction() - 0.125).abs() < 1e-12);
        assert!((lat.scheduling_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_total_fractions_are_zero() {
        let lat = LatencyBreakdown::default();
        assert_eq!(lat.bfs_fraction(), 0.0);
        assert_eq!(lat.scheduling_fraction(), 0.0);
    }
}
