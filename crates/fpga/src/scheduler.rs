//! The conflict-resolving scheduler between diffusers and score banks
//! (§V-A).
//!
//! With parallelism `P`, each diffuser streams one score-table write per
//! cycle, but the write may target *any* PE's score bank (scores are
//! node-partitioned across PEs). A bank accepts one write per cycle, so
//! when several diffusers target the same bank the scheduler serializes
//! them — these stall cycles are the "FPGA-Scheduling" component of Fig. 5
//! (< 20 % at `P = 2`, < 40 % beyond, per the paper).
//!
//! [`simulate_bank_conflicts`] performs an exact cycle-by-cycle simulation
//! of that arbitration with rotating (round-robin) priority, which is both
//! fair and cheap in hardware.

/// Outcome of arbitrating one iteration's write streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleResult {
    /// Cycles the iteration actually took under arbitration.
    pub cycles: u64,
    /// Cycles it would have taken with no conflicts
    /// (`max_p len(stream_p)`).
    pub ideal_cycles: u64,
    /// `cycles - ideal_cycles`.
    pub stall_cycles: u64,
    /// Total write requests granted (= total requests issued).
    pub grants: u64,
}

/// Simulates per-cycle arbitration of `streams[p]` — the ordered bank
/// targets PE `p` wants to write — over banks `0..num_banks`.
///
/// Each cycle, every unfinished PE proposes its next write; for every bank
/// exactly one proposer is granted, chosen by rotating priority
/// (`(cycle + pe) % P` wins ties). Granted PEs advance; the rest retry next
/// cycle.
///
/// # Panics
///
/// Panics if a stream references a bank `>= num_banks`.
pub fn simulate_bank_conflicts(streams: &[Vec<u32>], num_banks: usize) -> ScheduleResult {
    let p = streams.len();
    let ideal_cycles = streams.iter().map(|s| s.len() as u64).max().unwrap_or(0);
    let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
    if p == 0 || total == 0 {
        return ScheduleResult {
            cycles: 0,
            ideal_cycles,
            stall_cycles: 0,
            grants: 0,
        };
    }
    let mut cursor = vec![0usize; p];
    let mut remaining = total;
    let mut cycles: u64 = 0;
    // Reused per-cycle grant table: bank -> granted PE this cycle.
    let mut granted_pe = vec![usize::MAX; num_banks];
    let mut touched: Vec<u32> = Vec::with_capacity(p);

    while remaining > 0 {
        // Collect proposals with rotating priority: scan PEs starting at
        // offset (cycles % p); the first proposer per bank wins.
        for i in 0..p {
            let pe = (cycles as usize + i) % p;
            if cursor[pe] >= streams[pe].len() {
                continue;
            }
            let bank = streams[pe][cursor[pe]];
            assert!(
                (bank as usize) < num_banks,
                "stream references bank {bank} >= {num_banks}"
            );
            if granted_pe[bank as usize] == usize::MAX {
                granted_pe[bank as usize] = pe;
                touched.push(bank);
            }
        }
        for &bank in &touched {
            let pe = granted_pe[bank as usize];
            cursor[pe] += 1;
            remaining -= 1;
            granted_pe[bank as usize] = usize::MAX;
        }
        touched.clear();
        cycles += 1;
    }
    ScheduleResult {
        cycles,
        ideal_cycles,
        stall_cycles: cycles - ideal_cycles,
        grants: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_streams_take_ideal_cycles() {
        // Two PEs writing only to their own banks: no stalls.
        let streams = vec![vec![0, 0, 0], vec![1, 1]];
        let r = simulate_bank_conflicts(&streams, 2);
        assert_eq!(r.cycles, 3);
        assert_eq!(r.ideal_cycles, 3);
        assert_eq!(r.stall_cycles, 0);
        assert_eq!(r.grants, 5);
    }

    #[test]
    fn full_conflict_serializes() {
        // Both PEs hammer bank 0: total work must serialize.
        let streams = vec![vec![0, 0, 0], vec![0, 0, 0]];
        let r = simulate_bank_conflicts(&streams, 2);
        assert_eq!(r.cycles, 6);
        assert_eq!(r.ideal_cycles, 3);
        assert_eq!(r.stall_cycles, 3);
    }

    #[test]
    fn rotating_priority_is_fair() {
        // Under rotating priority, neither PE starves: with equal streams
        // the grants alternate, so both finish within one cycle of each
        // other.
        let streams = vec![vec![0; 10], vec![0; 10]];
        let r = simulate_bank_conflicts(&streams, 1);
        assert_eq!(r.cycles, 20);
    }

    #[test]
    fn empty_streams() {
        let r = simulate_bank_conflicts(&[], 4);
        assert_eq!(r.cycles, 0);
        let r = simulate_bank_conflicts(&[vec![], vec![]], 4);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.grants, 0);
    }

    #[test]
    fn single_pe_never_stalls() {
        let streams = vec![vec![0, 1, 0, 1, 2]];
        let r = simulate_bank_conflicts(&streams, 3);
        assert_eq!(r.cycles, 5);
        assert_eq!(r.stall_cycles, 0);
    }

    #[test]
    fn mixed_conflicts_bounded_by_serialization() {
        let streams = vec![vec![0, 1, 2], vec![0, 2, 1], vec![0, 1, 2], vec![3, 3, 3]];
        let r = simulate_bank_conflicts(&streams, 4);
        // Lower bound: ideal; upper bound: total serialization.
        assert!(r.cycles >= r.ideal_cycles);
        assert!(r.cycles <= 12);
        assert_eq!(r.grants, 12);
    }

    #[test]
    #[should_panic(expected = "bank")]
    fn out_of_range_bank_panics() {
        let _ = simulate_bank_conflicts(&[vec![5]], 2);
    }
}
