//! The 32-bit integer score domain of §V-A.
//!
//! Floating-point arithmetic is expensive on FPGA fabric, so MeLoPPR's PEs
//! work on integers: the seed node starts with a large integer
//! `Max = d·|G_L(s)|` instead of probability 1.0, the decay factor is
//! approximated as `α ≈ αp / 2^q` (a 16-bit multiply plus a `q`-bit shift —
//! no DSP-hungry division), and per-degree splits are plain integer
//! divisions implemented in logic. The paper reports the resulting top-`k`
//! precision loss: `< 4 %` when `d` equals the average degree and
//! `< 0.001 %` at the maximum degree; it evaluates with `d = max_degree/2`
//! and `q = 10`. The `study_fixed_point` experiment regenerates that sweep.

use crate::error::{FpgaError, Result};
use meloppr_core::quantized::{fixed_coeff, mul_shift};

/// How the scale constant `d` of `Max = d·|G_L(s)|` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegreeScale {
    /// `d = max_degree / 2` — the paper's final choice.
    #[default]
    HalfMax,
    /// `d = avg_degree` (rounded up) — the paper's "< 4 % loss" setting.
    Average,
    /// `d = max_degree` — the paper's "< 0.001 % loss" setting.
    Max,
    /// An explicit constant.
    Fixed(u32),
}

impl DegreeScale {
    /// Resolves the policy into a concrete `d ≥ 1` for a graph with the
    /// given degree statistics.
    pub fn resolve(&self, max_degree: u32, avg_degree: f64) -> u32 {
        let d = match *self {
            DegreeScale::HalfMax => max_degree / 2,
            DegreeScale::Average => avg_degree.ceil() as u32,
            DegreeScale::Max => max_degree,
            DegreeScale::Fixed(d) => d,
        };
        d.max(1)
    }
}

/// The fixed-point format used by every score table of one query.
///
/// # Examples
///
/// ```
/// use meloppr_fpga::FixedPointFormat;
///
/// # fn main() -> Result<(), meloppr_fpga::FpgaError> {
/// // d = 8, ball size |V| + |E| = 1000, α = 0.85, q = 10.
/// let fmt = FixedPointFormat::new(8, 1000, 0.85, 10)?;
/// assert_eq!(fmt.max_value(), 8000);
/// // α is approximated as 870/1024 ≈ 0.8496.
/// assert!((fmt.effective_alpha() - 0.85).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPointFormat {
    max_value: u32,
    alpha_p: u16,
    q: u32,
}

impl FixedPointFormat {
    /// Creates a format with `Max = d·graph_size` and `α ≈ αp/2^q`.
    ///
    /// `graph_size` is the paper's `|G_L(s)| = |V| + |E|` of the query's
    /// depth-`L` ball (an upper bound works too — a bigger `Max` only
    /// increases precision).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::FixedPointOverflow`] if `d == 0`,
    /// `graph_size == 0`, `Max` exceeds `u32::MAX`, `q` is not in `1..=15`,
    /// or `α ∉ (0, 1)`.
    pub fn new(d: u32, graph_size: usize, alpha: f64, q: u32) -> Result<Self> {
        if d == 0 || graph_size == 0 {
            return Err(FpgaError::FixedPointOverflow {
                reason: format!("d = {d} and graph size = {graph_size} must be positive"),
            });
        }
        if !(1..=15).contains(&q) {
            return Err(FpgaError::FixedPointOverflow {
                reason: format!("q = {q} outside 1..=15 (αp must fit 16 bits)"),
            });
        }
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(FpgaError::FixedPointOverflow {
                reason: format!("alpha = {alpha} outside (0, 1)"),
            });
        }
        let max = (d as u64).checked_mul(graph_size as u64).ok_or_else(|| {
            FpgaError::FixedPointOverflow {
                reason: "Max = d * |G| overflows u64".into(),
            }
        })?;
        if max > u32::MAX as u64 {
            return Err(FpgaError::FixedPointOverflow {
                reason: format!("Max = {max} exceeds the 32-bit score range"),
            });
        }
        // Shared with the host-side Q-format rungs
        // (`meloppr_core::quantized`), so the simulated accelerator and
        // the quantized host path realize the same α by construction.
        let alpha_p = fixed_coeff(alpha, q) as u16;
        Ok(FixedPointFormat {
            max_value: max as u32,
            alpha_p,
            q,
        })
    }

    /// Builds the format a query on graph `g` would use: resolves `d` from
    /// the graph's degree statistics per `scale`, bounds `|G_L(s)|` by the
    /// whole graph's size `|V| + |E|` (a ball can never exceed it, and a
    /// larger `Max` only adds precision), and clamps `d` so `Max` stays in
    /// 32 bits.
    ///
    /// # Errors
    ///
    /// As [`FixedPointFormat::new`].
    pub fn for_graph<G: meloppr_graph::GraphView + ?Sized>(
        g: &G,
        alpha: f64,
        q: u32,
        scale: DegreeScale,
    ) -> Result<Self> {
        let stats = meloppr_graph::degree::degree_stats(g);
        let d = scale.resolve(stats.max, stats.mean);
        let size = g.size().max(1);
        let d_clamped = d.min((u32::MAX as usize / size).max(1) as u32).max(1);
        FixedPointFormat::new(d_clamped, size, alpha, q)
    }

    /// The seed node's initial integer score (`Max = d·|G_L(s)|`).
    pub fn max_value(&self) -> u32 {
        self.max_value
    }

    /// The numerator `αp` of the decay approximation.
    pub fn alpha_p(&self) -> u16 {
        self.alpha_p
    }

    /// The shift amount `q` (denominator `2^q`).
    pub fn q(&self) -> u32 {
        self.q
    }

    /// The decay factor actually realized by the integer datapath,
    /// `αp / 2^q`.
    pub fn effective_alpha(&self) -> f64 {
        self.alpha_p as f64 / (1u64 << self.q) as f64
    }

    /// Hardware multiply-by-α: `(x·αp) >> q`, computed in 64 bits exactly
    /// as a DSP-free multiplier + shifter would (the shared
    /// [`mul_shift`] primitive the host Q-format rungs also use).
    pub fn mul_alpha(&self, x: u32) -> u32 {
        mul_shift(x as u64, self.alpha_p as u64, self.q) as u32
    }

    /// Hardware multiply-by-(1-α): `(x·(2^q − αp)) >> q`.
    pub fn mul_one_minus_alpha(&self, x: u32) -> u32 {
        let comp = (1u64 << self.q) - self.alpha_p as u64;
        mul_shift(x as u64, comp, self.q) as u32
    }

    /// Quantizes a probability (`0 ≤ p ≤ 1`) into the integer domain.
    pub fn quantize(&self, p: f64) -> u32 {
        debug_assert!((0.0..=1.0).contains(&p));
        (p * self.max_value as f64).round() as u32
    }

    /// Dequantizes an integer score back into a probability estimate.
    pub fn dequantize(&self, x: u32) -> f64 {
        x as f64 / self.max_value as f64
    }

    /// Rescales a product of two Max-scaled integers back to the Max
    /// scale — the multiply-accumulate used when weighting a stage's
    /// output by its task weight (64-bit intermediate, like the DSP-free
    /// MAC in the accumulator). Rounds to nearest — in hardware a single
    /// adder ahead of the divider — which halves the per-entry error of
    /// plain truncation; small-`Max` formats (`d = avg_degree`) are the
    /// main beneficiary.
    pub fn weighted(&self, weight: u32, score: u32) -> u32 {
        let half = self.max_value as u64 / 2;
        ((weight as u64 * score as u64 + half) / self.max_value as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setting_alpha_approximation() {
        let fmt = FixedPointFormat::new(10, 100, 0.85, 10).unwrap();
        assert_eq!(fmt.alpha_p(), 870); // 0.85 * 1024 = 870.4 -> 870
        assert!((fmt.effective_alpha() - 870.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn mul_alpha_matches_float_within_one_ulp() {
        let fmt = FixedPointFormat::new(10, 1000, 0.85, 10).unwrap();
        for x in [0u32, 1, 99, 1234, 100_000] {
            let hw = fmt.mul_alpha(x);
            let expect = (x as f64 * fmt.effective_alpha()).floor() as u32;
            assert!(hw.abs_diff(expect) <= 1, "x = {x}: {hw} vs {expect}");
        }
    }

    #[test]
    fn alpha_and_complement_partition_value() {
        let fmt = FixedPointFormat::new(10, 1000, 0.85, 10).unwrap();
        for x in [1024u32, 4096, 999_999] {
            let sum = fmt.mul_alpha(x) as u64 + fmt.mul_one_minus_alpha(x) as u64;
            // Truncation may lose at most 2 units total.
            assert!(x as u64 - sum <= 2, "x = {x}, sum = {sum}");
        }
    }

    #[test]
    fn quantize_roundtrip() {
        let fmt = FixedPointFormat::new(16, 5000, 0.85, 10).unwrap();
        for p in [0.0, 0.25, 0.5, 1.0] {
            let back = fmt.dequantize(fmt.quantize(p));
            assert!((back - p).abs() < 1e-4);
        }
    }

    #[test]
    fn weighted_rescales_products() {
        let fmt = FixedPointFormat::new(10, 100, 0.85, 10).unwrap();
        let max = fmt.max_value();
        // weight = Max (1.0) leaves scores unchanged.
        assert_eq!(fmt.weighted(max, 123), 123);
        // weight = Max/2 halves them.
        assert_eq!(fmt.weighted(max / 2, 100), 50);
    }

    #[test]
    fn rejects_degenerate_formats() {
        assert!(FixedPointFormat::new(0, 100, 0.85, 10).is_err());
        assert!(FixedPointFormat::new(10, 0, 0.85, 10).is_err());
        assert!(FixedPointFormat::new(10, 100, 0.85, 0).is_err());
        assert!(FixedPointFormat::new(10, 100, 0.85, 16).is_err());
        assert!(FixedPointFormat::new(10, 100, 1.5, 10).is_err());
        // Max overflow: d * size > u32::MAX.
        assert!(FixedPointFormat::new(u32::MAX, 1 << 20, 0.85, 10).is_err());
    }

    #[test]
    fn datapath_agrees_with_host_quantized_primitives() {
        // The host precision ladder's Fixed(q) rung and the simulated
        // accelerator must realize the *same* α quantization — both
        // delegate to `meloppr_core::quantized`, so this can only break
        // if one side stops doing so.
        for q in [4u32, 10, 15] {
            let fmt = FixedPointFormat::new(10, 1000, 0.85, q).unwrap();
            assert_eq!(fmt.alpha_p() as u64, fixed_coeff(0.85, q));
            for x in [0u32, 1, 870, 54_321] {
                assert_eq!(
                    fmt.mul_alpha(x) as u64,
                    mul_shift(x as u64, fmt.alpha_p() as u64, q)
                );
            }
        }
    }

    #[test]
    fn degree_scale_policies() {
        assert_eq!(DegreeScale::HalfMax.resolve(10, 3.0), 5);
        assert_eq!(DegreeScale::Average.resolve(10, 3.2), 4);
        assert_eq!(DegreeScale::Max.resolve(10, 3.0), 10);
        assert_eq!(DegreeScale::Fixed(7).resolve(10, 3.0), 7);
        // Never returns zero.
        assert_eq!(DegreeScale::HalfMax.resolve(1, 0.5), 1);
        assert_eq!(DegreeScale::default(), DegreeScale::HalfMax);
    }
}
