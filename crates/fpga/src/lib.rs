//! # MeLoPPR FPGA — cycle-approximate accelerator simulator
//!
//! A from-scratch simulator of the CPU+FPGA co-design of *"MeLoPPR:
//! Software/Hardware Co-design for Memory-efficient Low-latency
//! Personalized PageRank"* (DAC 2021, §V): since the paper's Kintex-7
//! KC705 board is not required hardware for this reproduction, the
//! accelerator is modelled structurally — functional fixed-point datapaths
//! plus a cycle-level timing model — so every number the paper's
//! evaluation reports (latency breakdowns, BRAM bytes, resource
//! utilization) can be regenerated.
//!
//! ## Components (mirroring Fig. 4)
//!
//! * [`FixedPointFormat`] — the 32-bit integer score domain
//!   (`Max = d·|G_L(s)|`, `α ≈ αp/2^q`) of §V-A;
//! * [`tables`] — sub-graph / accumulated / residual score tables with the
//!   paper's exact BRAM byte accounting, plus the bounded on-chip global
//!   score table of §V-B;
//! * [`pe`] — the PE array partitioning and per-iteration write streams;
//! * [`scheduler`] — exact cycle-by-cycle arbitration of same-bank write
//!   conflicts (the "FPGA-Scheduling" bars of Fig. 5);
//! * [`FpgaAccelerator`] — one diffusion: functional integer model +
//!   timing model;
//! * [`HybridMeloppr`] — the full host+device query loop with end-to-end
//!   [`LatencyBreakdown`]s;
//! * [`FpgaHybrid`] — the same engine behind the unified
//!   [`meloppr_core::backend::PprBackend`] query API (trait-object
//!   serving and budget routing next to the CPU solvers);
//! * [`ResourceModel`] — KC705 LUT/BRAM estimates vs parallelism
//!   (Table I).
//!
//! ## Example
//!
//! ```
//! use meloppr_core::MelopprParams;
//! use meloppr_fpga::{AcceleratorConfig, HybridConfig, HybridMeloppr};
//! use meloppr_graph::generators;
//!
//! # fn main() -> Result<(), meloppr_fpga::FpgaError> {
//! let g = generators::karate_club();
//! let mut params = MelopprParams::paper_defaults();
//! params.ppr.k = 5;
//!
//! // P = 8 at 100 MHz.
//! let config = HybridConfig {
//!     accel: AcceleratorConfig { parallelism: 8, ..AcceleratorConfig::default() },
//!     ..HybridConfig::default()
//! };
//! let engine = HybridMeloppr::new(&g, params, config)?;
//! let outcome = engine.query(0)?;
//! println!(
//!     "top-{} in {:.3} ms ({}% scheduling)",
//!     outcome.ranking.len(),
//!     outcome.latency.total_ms(),
//!     (outcome.latency.scheduling_fraction() * 100.0) as u32
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accelerator;
mod backend;
mod error;
mod fixed_point;
mod host;
mod latency;
pub mod pe;
mod resource;
pub mod scheduler;
pub mod tables;

pub use accelerator::{AcceleratorConfig, FpgaAccelerator, FpgaDiffusionResult};
pub use backend::FpgaHybrid;
pub use error::{FpgaError, Result};
pub use fixed_point::{DegreeScale, FixedPointFormat};
pub use host::{HostCostModel, HybridConfig, HybridMeloppr, HybridOutcome, HybridStats};
pub use latency::{cycles_to_ns, CycleBreakdown, LatencyBreakdown};
pub use resource::{ResourceModel, ResourceUtilization, BRAM36_BYTES};
