//! Property-based tests of the fixed-point datapath against the float
//! kernel.

use proptest::prelude::*;

use meloppr_core::diffusion::{diffuse_from_seed, DiffusionConfig};
use meloppr_fpga::{AcceleratorConfig, FixedPointFormat, FpgaAccelerator};
use meloppr_graph::{bfs_ball, generators, GraphView, NodeId, Subgraph};

fn arb_ball() -> impl Strategy<Value = Subgraph> {
    (8usize..80, any::<u64>(), 1u32..4).prop_map(|(n, seed, depth)| {
        let g = generators::locality_preferential(n, n + n / 2, 0.5, n / 3 + 2, seed)
            .expect("generator");
        let ball = bfs_ball(&g, 0, depth).expect("ball");
        Subgraph::extract(&g, &ball).expect("extract")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mul_alpha_never_exceeds_true_product(x in any::<u32>(), q in 1u32..15) {
        let fmt = FixedPointFormat::new(1, 100, 0.85, q).unwrap();
        let hw = fmt.mul_alpha(x) as f64;
        let exact = x as f64 * fmt.effective_alpha();
        prop_assert!(hw <= exact + 1e-9);
        prop_assert!(hw >= exact - 1.0); // truncation loses < 1 unit
    }

    #[test]
    fn split_is_conservative(x in any::<u32>(), q in 1u32..15) {
        let fmt = FixedPointFormat::new(1, 100, 0.85, q).unwrap();
        let sum = fmt.mul_alpha(x) as u64 + fmt.mul_one_minus_alpha(x) as u64;
        prop_assert!(sum <= x as u64);
        prop_assert!(x as u64 - sum <= 2);
    }

    #[test]
    fn integer_diffusion_tracks_float(sub in arb_ball(), iters in 1usize..4) {
        let iters = iters.min(sub.num_nodes());
        let fmt = FixedPointFormat::new(64, 10_000, 0.85, 10).unwrap();
        let accel = FpgaAccelerator::new(AcceleratorConfig {
            parallelism: 4,
            ..AcceleratorConfig::default()
        })
        .unwrap();
        let hw = accel
            .run_diffusion(&sub, fmt.max_value(), iters, &fmt)
            .unwrap();
        let float = diffuse_from_seed(
            &sub,
            sub.seed_local(),
            DiffusionConfig::new(fmt.effective_alpha(), iters).unwrap(),
        )
        .unwrap();
        for u in 0..sub.num_nodes() {
            let hw_p = fmt.dequantize(hw.accumulated[u]);
            prop_assert!(
                (hw_p - float.accumulated[u]).abs() < 0.02,
                "node {u}: {hw_p} vs {}",
                float.accumulated[u]
            );
        }
        // Truncation only loses mass, never creates it.
        let total: u64 = hw.accumulated.iter().map(|&x| x as u64).sum();
        prop_assert!(total <= fmt.max_value() as u64);
    }

    #[test]
    fn timing_is_deterministic_and_monotone_in_work(sub in arb_ball()) {
        let fmt = FixedPointFormat::new(64, 10_000, 0.85, 10).unwrap();
        let accel = FpgaAccelerator::new(AcceleratorConfig {
            parallelism: 2,
            ..AcceleratorConfig::default()
        })
        .unwrap();
        let one = accel.run_diffusion(&sub, fmt.max_value(), 1, &fmt).unwrap();
        let one_again = accel.run_diffusion(&sub, fmt.max_value(), 1, &fmt).unwrap();
        prop_assert_eq!(&one, &one_again);
        let two = accel.run_diffusion(&sub, fmt.max_value(), 2, &fmt).unwrap();
        prop_assert!(two.cycles.total() >= one.cycles.total());
    }

    #[test]
    fn functional_result_parallelism_invariant(sub in arb_ball()) {
        let fmt = FixedPointFormat::new(64, 10_000, 0.85, 10).unwrap();
        let run = |p: usize| {
            FpgaAccelerator::new(AcceleratorConfig {
                parallelism: p,
                ..AcceleratorConfig::default()
            })
            .unwrap()
            .run_diffusion(&sub, fmt.max_value(), 2, &fmt)
            .unwrap()
        };
        let base = run(1);
        for p in [3usize, 8] {
            let r = run(p);
            prop_assert_eq!(&r.accumulated, &base.accumulated);
            prop_assert_eq!(&r.residual, &base.residual);
        }
    }
}

#[test]
fn pe_scan_streams_cover_whole_table() {
    use meloppr_fpga::pe::PeArray;
    let g = generators::karate_club();
    let ball = bfs_ball(&g, 0, 2).unwrap();
    let sub = Subgraph::extract(&g, &ball).unwrap();
    let array = PeArray::partition(&sub, 4);
    // No active node: still one scan cycle per owned node.
    let streams = array.streams_for_scan(&sub, |_| false);
    let total: usize = streams.iter().map(|s| s.len()).sum();
    assert_eq!(total, sub.num_nodes());
    // All active: adds one write per arc.
    let streams = array.streams_for_scan(&sub, |_| true);
    let total: usize = streams.iter().map(|s| s.len()).sum();
    assert_eq!(total, sub.num_nodes() + sub.num_directed_edges());
    // Activity restricted to even local ids.
    let streams = array.streams_for_scan(&sub, |u| u % 2 == 0);
    let arcs_even: usize = (0..sub.num_nodes() as NodeId)
        .filter(|&u| u % 2 == 0)
        .map(|u| sub.neighbors(u).len())
        .sum();
    let total: usize = streams.iter().map(|s| s.len()).sum();
    assert_eq!(total, sub.num_nodes() + arcs_even);
}
