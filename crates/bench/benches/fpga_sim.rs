//! Criterion micro-benchmarks of the accelerator simulator itself: how
//! fast the cycle-level model runs (simulation throughput, not modelled
//! hardware latency — that is Fig. 5's business).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use meloppr_bench::workload::sample_hub_seeds;
use meloppr_fpga::scheduler::simulate_bank_conflicts;
use meloppr_fpga::{AcceleratorConfig, FixedPointFormat, FpgaAccelerator};
use meloppr_graph::generators::corpus::PaperGraph;
use meloppr_graph::{bfs_ball, Subgraph};

fn bench_integer_diffusion(c: &mut Criterion) {
    let g = PaperGraph::G1Citeseer.generate(42).unwrap();
    let hub = sample_hub_seeds(&g, 1)[0];
    let ball = bfs_ball(&g, hub, 3).unwrap();
    let sub = Subgraph::extract(&g, &ball).unwrap();
    let fmt = FixedPointFormat::for_graph(&g, 0.85, 10, Default::default()).unwrap();

    let mut group = c.benchmark_group("fpga_diffusion_sim");
    for p in [1usize, 4, 16] {
        let accel = FpgaAccelerator::new(AcceleratorConfig {
            parallelism: p,
            ..AcceleratorConfig::default()
        })
        .unwrap();
        group.bench_with_input(BenchmarkId::new("P", p), &accel, |b, accel| {
            b.iter(|| {
                accel
                    .run_diffusion(black_box(&sub), fmt.max_value(), 3, &fmt)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    // Synthetic conflict-heavy streams: 16 PEs, 4096 writes each, targets
    // striped so every cycle has collisions.
    let streams: Vec<Vec<u32>> = (0..16)
        .map(|pe| (0..4096).map(|i| ((pe + i) % 16) as u32).collect())
        .collect();
    c.bench_function("scheduler_arbitration_64k_writes", |b| {
        b.iter(|| simulate_bank_conflicts(black_box(&streams), 16));
    });
}

criterion_group!(benches, bench_integer_diffusion, bench_scheduler);
criterion_main!(benches);
