//! Criterion micro-benchmarks of the graph substrate: BFS ball
//! extraction, sub-graph induction and generator throughput — the
//! host-side operations of every MeLoPPR query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use meloppr_bench::workload::sample_hub_seeds;
use meloppr_graph::generators::corpus::PaperGraph;
use meloppr_graph::{bfs_ball, Subgraph};

fn bench_bfs_ball(c: &mut Criterion) {
    let g = PaperGraph::G3Pubmed.generate_scaled(0.5, 42).unwrap();
    let hub = sample_hub_seeds(&g, 1)[0];
    let mut group = c.benchmark_group("bfs_ball");
    for depth in [2u32, 3, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| bfs_ball(black_box(&g), black_box(hub), d).unwrap());
        });
    }
    group.finish();
}

fn bench_subgraph_extract(c: &mut Criterion) {
    let g = PaperGraph::G3Pubmed.generate_scaled(0.5, 42).unwrap();
    let hub = sample_hub_seeds(&g, 1)[0];
    let mut group = c.benchmark_group("subgraph_extract");
    for depth in [3u32, 6] {
        let ball = bfs_ball(&g, hub, depth).unwrap();
        group.bench_with_input(
            BenchmarkId::new("nodes", ball.num_nodes()),
            &ball,
            |b, ball| {
                b.iter(|| Subgraph::extract(black_box(&g), black_box(ball)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("citeseer_standin_full", |b| {
        b.iter(|| PaperGraph::G1Citeseer.generate(black_box(7)).unwrap());
    });
    group.bench_function("pubmed_standin_10pct", |b| {
        b.iter(|| {
            PaperGraph::G3Pubmed
                .generate_scaled(0.1, black_box(7))
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs_ball,
    bench_subgraph_extract,
    bench_generators
);
criterion_main!(benches);
