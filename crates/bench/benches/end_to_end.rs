//! Criterion end-to-end query benchmarks: baseline vs MeLoPPR (sequential
//! and parallel) vs the simulated hybrid platform, native Rust wall-clock,
//! all driven through the unified `PprBackend` API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use meloppr_bench::sample_seeds;
use meloppr_core::backend::{LocalPpr, Meloppr, PprBackend, QueryRequest};
use meloppr_core::{MelopprParams, PprParams, SelectionStrategy};
use meloppr_fpga::{FpgaHybrid, HybridConfig};
use meloppr_graph::generators::corpus::PaperGraph;

fn params() -> MelopprParams {
    MelopprParams {
        ppr: PprParams::new(0.85, 6, 200).unwrap(),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.02),
        ..MelopprParams::paper_defaults()
    }
}

fn bench_query_engines(c: &mut Criterion) {
    let g = PaperGraph::G2Cora.generate(42).unwrap();
    let seed = sample_seeds(&g, 1, 3)[0];
    let p = params();
    let req = QueryRequest::new(seed);

    let mut group = c.benchmark_group("query_cora");
    group.sample_size(30);
    let baseline = LocalPpr::new(&g, p.ppr).unwrap();
    group.bench_function("local_ppr_baseline", |b| {
        b.iter(|| baseline.query(black_box(&req)).unwrap());
    });
    let engine = Meloppr::new(&g, p.clone()).unwrap();
    group.bench_function("meloppr_sequential", |b| {
        b.iter(|| engine.query(black_box(&req)).unwrap());
    });
    let parallel = Meloppr::new(&g, p.clone())
        .unwrap()
        .with_threads(4)
        .unwrap();
    group.bench_function("meloppr_parallel_4", |b| {
        b.iter(|| parallel.query(black_box(&req)).unwrap());
    });
    let hybrid = FpgaHybrid::new(&g, p.clone(), HybridConfig::default()).unwrap();
    group.bench_function("hybrid_fpga_sim", |b| {
        b.iter(|| hybrid.query(black_box(&req)).unwrap());
    });
    group.finish();
}

fn bench_selection_ratios(c: &mut Criterion) {
    let g = PaperGraph::G1Citeseer.generate(42).unwrap();
    let seed = sample_seeds(&g, 1, 5)[0];
    let req = QueryRequest::new(seed);
    let mut group = c.benchmark_group("meloppr_vs_ratio");
    group.sample_size(20);
    for ratio in [0.01f64, 0.05, 0.2] {
        let p = params().with_selection(SelectionStrategy::TopFraction(ratio));
        let backend = Meloppr::new(&g, p).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}pct", (ratio * 100.0) as u32)),
            &backend,
            |b, backend| {
                b.iter(|| backend.query(black_box(&req)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_engines, bench_selection_ratios);
criterion_main!(benches);
