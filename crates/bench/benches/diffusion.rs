//! Criterion micro-benchmarks of the graph-diffusion kernel `GD(l)` —
//! the numeric core every implementation shares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use meloppr_bench::workload::sample_hub_seeds;
use meloppr_core::diffusion::{diffuse_from_seed, DiffusionConfig};
use meloppr_core::{exact_ppr, PprParams};
use meloppr_graph::generators::corpus::PaperGraph;
use meloppr_graph::{bfs_ball, Subgraph};

fn bench_ball_diffusion(c: &mut Criterion) {
    let g = PaperGraph::G3Pubmed.generate_scaled(0.5, 42).unwrap();
    let hub = sample_hub_seeds(&g, 1)[0];
    let mut group = c.benchmark_group("diffusion_on_ball");
    for depth in [3usize, 6] {
        let ball = bfs_ball(&g, hub, depth as u32).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        let config = DiffusionConfig::new(0.85, depth).unwrap();
        let out = diffuse_from_seed(&sub, sub.seed_local(), config).unwrap();
        group.throughput(Throughput::Elements(out.work.edge_updates as u64));
        group.bench_with_input(
            BenchmarkId::new("edges", sub.num_edges()),
            &(sub, config),
            |b, (sub, config)| {
                b.iter(|| diffuse_from_seed(black_box(sub), sub.seed_local(), *config).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_full_graph_ground_truth(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_ppr_full_graph");
    group.sample_size(20);
    for (label, scale) in [("pubmed_25pct", 0.25f64), ("pubmed_50pct", 0.5)] {
        let g = PaperGraph::G3Pubmed.generate_scaled(scale, 42).unwrap();
        let params = PprParams::paper_defaults();
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| exact_ppr(black_box(g), 17, &params).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ball_diffusion, bench_full_graph_ground_truth);
criterion_main!(benches);
