//! Calibrated CPU cost model for the paper's software baselines.
//!
//! The paper's CPU implementations (both the `LocalPPR-CPU` baseline and
//! `MeLoPPR-CPU`) are NetworkX/Python programs on a 2.8 GHz i7 (§VI). Our
//! Rust kernels are orders of magnitude faster per edge, so wall-clock
//! comparisons against the simulated FPGA would be meaningless for
//! reproducing the paper's *ratios*. Instead, experiments charge both CPU
//! implementations with a per-unit-of-work cost model calibrated to the
//! paper's reported absolute numbers (Fig. 5 shows ~9 ms for one stage-one
//! diffusion on G1), and count work units exactly.
//!
//! Speedup ratios then depend only on counted work — which we reproduce
//! faithfully — while the constants set the axis scale. Work units come
//! from the unified API's normalized
//! [`QueryStats`], so every backend is charged identically. The Criterion
//! benches measure the native Rust implementations separately.

use meloppr_core::QueryStats;

/// Per-work-unit costs of a NetworkX-class CPU implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCostModel {
    /// Nanoseconds per adjacency entry scanned during BFS extraction.
    pub ns_per_bfs_edge: f64,
    /// Nanoseconds per adjacency entry processed during diffusion.
    pub ns_per_diffusion_edge: f64,
    /// Nanoseconds per ball node touched (allocation, dict bookkeeping).
    pub ns_per_node_touch: f64,
    /// Fixed per-query overhead (interpreter, result assembly).
    pub fixed_overhead_ns: f64,
}

impl Default for CpuCostModel {
    /// Calibration: one length-3 diffusion over G1's stage-one ball
    /// (≈ 18 k edge updates) costs ≈ 9 ms, matching Fig. 5's CPU bar.
    fn default() -> Self {
        CpuCostModel {
            ns_per_bfs_edge: 800.0,
            ns_per_diffusion_edge: 500.0,
            ns_per_node_touch: 150.0,
            fixed_overhead_ns: 50_000.0,
        }
    }
}

impl CpuCostModel {
    /// Modelled latency of one query from its normalized [`QueryStats`] —
    /// the same unit costs for every backend: BFS scans, diffusion edge
    /// updates and node touches, plus a fixed overhead that grows 2 % per
    /// additional diffusion task (per-task dispatch bookkeeping).
    pub fn query_ns(&self, stats: &QueryStats) -> f64 {
        self.fixed_overhead_ns * (1.0 + stats.total_diffusions.saturating_sub(1) as f64 * 0.02)
            + stats.bfs_edges_scanned as f64 * self.ns_per_bfs_edge
            + stats.diffusion_edge_updates as f64 * self.ns_per_diffusion_edge
            + stats.nodes_touched as f64 * self.ns_per_node_touch
    }

    /// Modelled latency of just the BFS-extraction portion of a query
    /// (the light-blue "BFS time percentage" bars of Fig. 7).
    pub fn bfs_ns(&self, stats: &QueryStats) -> f64 {
        stats.bfs_edges_scanned as f64 * self.ns_per_bfs_edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_core::backend::{LocalPpr, Meloppr, PprBackend, QueryRequest};
    use meloppr_core::{MelopprParams, PprParams, SelectionStrategy};
    use meloppr_graph::generators;

    #[test]
    fn local_model_scales_with_work() {
        let g = generators::karate_club();
        let model = CpuCostModel::default();
        let run = |length: usize| {
            LocalPpr::new(&g, PprParams::new(0.85, length, 5).unwrap())
                .unwrap()
                .query(&QueryRequest::new(0))
                .unwrap()
        };
        let small = run(1);
        let large = run(6);
        assert!(model.query_ns(&large.stats) > model.query_ns(&small.stats));
    }

    #[test]
    fn meloppr_cost_grows_with_selection() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.2, 3)
            .unwrap();
        let model = CpuCostModel::default();
        let run = |frac: f64| {
            let params = MelopprParams {
                ppr: PprParams::new(0.85, 6, 20).unwrap(),
                stages: vec![3, 3],
                selection: SelectionStrategy::TopFraction(frac),
                ..MelopprParams::paper_defaults()
            };
            let outcome = Meloppr::new(&g, params)
                .unwrap()
                .query(&QueryRequest::new(11))
                .unwrap();
            model.query_ns(&outcome.stats)
        };
        assert!(run(0.3) > run(0.01));
    }

    #[test]
    fn bfs_portion_below_total() {
        let g = generators::karate_club();
        let params = MelopprParams {
            ppr: PprParams::new(0.85, 4, 5).unwrap(),
            stages: vec![2, 2],
            selection: SelectionStrategy::TopCount(3),
            ..MelopprParams::paper_defaults()
        };
        let outcome = Meloppr::new(&g, params)
            .unwrap()
            .query(&QueryRequest::new(0))
            .unwrap();
        let model = CpuCostModel::default();
        assert!(model.bfs_ns(&outcome.stats) < model.query_ns(&outcome.stats));
    }

    #[test]
    fn calibration_magnitude_matches_fig5() {
        // One stage-one diffusion on the full G1 stand-in, from a hub seed
        // (node 0 is the oldest preferential-attachment node), should land
        // within an order of magnitude of the paper's ~9 ms CPU bar.
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate(1)
            .unwrap();
        let baseline = LocalPpr::new(&g, PprParams::new(0.85, 3, 200).unwrap())
            .unwrap()
            .query(&QueryRequest::new(0))
            .unwrap();
        let ms = CpuCostModel::default().query_ns(&baseline.stats) / 1e6;
        assert!(ms > 0.5 && ms < 90.0, "calibration off: {ms} ms");
    }
}
