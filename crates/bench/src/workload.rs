//! Workload construction: corpus graphs and seed sampling.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use meloppr_graph::components::connected_components;
use meloppr_graph::generators::corpus::PaperGraph;
use meloppr_graph::{CsrGraph, NodeId};

/// Samples `count` distinct query seeds from the graph's largest connected
/// component (so depth-`L` balls are non-trivial), deterministically under
/// `rng_seed`.
///
/// Returns fewer seeds if the component is smaller than `count`.
pub fn sample_seeds(g: &CsrGraph, count: usize, rng_seed: u64) -> Vec<NodeId> {
    let (labels, num) = connected_components(g);
    let mut sizes = vec![0usize; num];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let giant = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(l, _)| l as u32)
        .unwrap_or(0);
    let mut candidates: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&v| labels[v as usize] == giant && g.degree(v) > 0)
        .collect();
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    candidates.shuffle(&mut rng);
    candidates.truncate(count);
    candidates.sort_unstable();
    candidates
}

/// Picks the `count` highest-degree seeds (ties by ascending id) — hub
/// queries whose balls are large enough to be diffusion-bound (used by the
/// Fig. 5 scalability case study, where parallelism effects only show on
/// non-trivial sub-graphs).
pub fn sample_hub_seeds(g: &CsrGraph, count: usize) -> Vec<NodeId> {
    let mut by_degree: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&v| g.degree(v) > 0)
        .collect();
    by_degree.sort_unstable_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    by_degree.truncate(count);
    by_degree.sort_unstable();
    by_degree
}

/// An experiment-ready corpus graph: the stand-in plus its provenance.
#[derive(Debug, Clone)]
pub struct CorpusGraph {
    /// Which paper graph this stands in for.
    pub paper: PaperGraph,
    /// The scale factor used (1.0 = full Table II size).
    pub scale: f64,
    /// The generated graph.
    pub graph: CsrGraph,
}

impl CorpusGraph {
    /// Generates a stand-in at the given scale (1.0 = paper size).
    ///
    /// # Panics
    ///
    /// Panics if generation fails (cannot happen for the fixed corpus
    /// parameters and scales in `(0, 1]`).
    pub fn generate(paper: PaperGraph, scale: f64, seed: u64) -> Self {
        let graph = if (scale - 1.0).abs() < f64::EPSILON {
            paper.generate(seed)
        } else {
            paper.generate_scaled(scale, seed)
        }
        .expect("corpus generation with valid scale");
        CorpusGraph {
            paper,
            scale,
            graph,
        }
    }

    /// A human-readable label, e.g. `"G1 (citeseer)"` or
    /// `"G4 (com-amazon, 2% scale)"`.
    pub fn label(&self) -> String {
        if (self.scale - 1.0).abs() < f64::EPSILON {
            self.paper.to_string()
        } else {
            format!(
                "{} ({}, {:.0}% scale)",
                self.paper.id(),
                self.paper.name(),
                self.scale * 100.0
            )
        }
    }
}

/// Experiment sizing parsed from command-line arguments.
///
/// Every experiment binary accepts:
///
/// * `--full` — run at the paper's full graph sizes and seed counts
///   (minutes to hours for the large graphs);
/// * `--seeds N` — override the number of query seeds per graph;
/// * `--scale F` — override the corpus scale factor (0 < F ≤ 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Whether `--full` was requested.
    pub full: bool,
    /// Seeds per graph.
    pub seeds: usize,
    /// Scale for the small corpus graphs G1–G3.
    pub small_scale: f64,
    /// Scale for the large corpus graphs G4–G6.
    pub large_scale: f64,
}

impl ExperimentScale {
    /// The default quick configuration: full-size G1–G3 (they are small)
    /// and 2 %-scale G4–G6, a handful of seeds.
    pub fn quick(seeds: usize) -> Self {
        ExperimentScale {
            full: false,
            seeds,
            small_scale: 1.0,
            large_scale: 0.02,
        }
    }

    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed values (these are
    /// experiment binaries; fail fast is the right behaviour).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I, default_seeds: usize) -> Self {
        let mut scale = ExperimentScale::quick(default_seeds);
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => {
                    scale.full = true;
                    scale.small_scale = 1.0;
                    scale.large_scale = 1.0;
                }
                "--seeds" => {
                    let v = it.next().expect("--seeds needs a value");
                    scale.seeds = v.parse().expect("--seeds needs an integer");
                }
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    let f: f64 = v.parse().expect("--scale needs a float");
                    assert!(f > 0.0 && f <= 1.0, "--scale must be in (0, 1]");
                    scale.small_scale = f;
                    scale.large_scale = f;
                }
                other => {
                    panic!("unknown argument {other:?} (supported: --full, --seeds N, --scale F)")
                }
            }
        }
        scale
    }

    /// The scale to use for a given corpus graph.
    pub fn scale_for(&self, paper: PaperGraph) -> f64 {
        if paper.is_large() {
            self.large_scale
        } else {
            self.small_scale
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_connected() {
        let g = PaperGraph::G1Citeseer.generate_scaled(0.1, 7).unwrap();
        let a = sample_seeds(&g, 5, 42);
        let b = sample_seeds(&g, 5, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        for &s in &a {
            assert!(g.degree(s) > 0);
        }
    }

    #[test]
    fn seed_count_capped_by_component() {
        let g = meloppr_graph::generators::path(4).unwrap();
        let seeds = sample_seeds(&g, 100, 1);
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn corpus_graph_labels() {
        let cg = CorpusGraph::generate(PaperGraph::G1Citeseer, 1.0, 3);
        assert_eq!(cg.label(), "G1 (citeseer)");
        let cg = CorpusGraph::generate(PaperGraph::G4ComAmazon, 0.02, 3);
        assert!(cg.label().contains("2% scale"));
    }

    #[test]
    fn args_parsing() {
        let s = ExperimentScale::from_args(Vec::<String>::new(), 10);
        assert_eq!(s.seeds, 10);
        assert!(!s.full);
        assert_eq!(s.scale_for(PaperGraph::G1Citeseer), 1.0);
        assert_eq!(s.scale_for(PaperGraph::G6ComYoutube), 0.02);

        let s =
            ExperimentScale::from_args(["--full".to_string(), "--seeds".into(), "3".into()], 10);
        assert!(s.full);
        assert_eq!(s.seeds, 3);
        assert_eq!(s.scale_for(PaperGraph::G6ComYoutube), 1.0);

        let s = ExperimentScale::from_args(["--scale".to_string(), "0.5".into()], 10);
        assert_eq!(s.scale_for(PaperGraph::G1Citeseer), 0.5);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_arg_panics() {
        let _ = ExperimentScale::from_args(["--bogus".to_string()], 1);
    }
}
