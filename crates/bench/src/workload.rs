//! Workload construction: corpus graphs, seed sampling and skewed query
//! mixes.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use meloppr_graph::components::connected_components;
use meloppr_graph::generators::corpus::PaperGraph;
use meloppr_graph::{CsrGraph, NodeId};

/// Samples `count` distinct query seeds from the graph's largest connected
/// component (so depth-`L` balls are non-trivial), deterministically under
/// `rng_seed`.
///
/// Returns fewer seeds if the component is smaller than `count`.
pub fn sample_seeds(g: &CsrGraph, count: usize, rng_seed: u64) -> Vec<NodeId> {
    let (labels, num) = connected_components(g);
    let mut sizes = vec![0usize; num];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let giant = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(l, _)| l as u32)
        .unwrap_or(0);
    let mut candidates: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&v| labels[v as usize] == giant && g.degree(v) > 0)
        .collect();
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    candidates.shuffle(&mut rng);
    candidates.truncate(count);
    candidates.sort_unstable();
    candidates
}

/// Picks the `count` highest-degree seeds (ties by ascending id) — hub
/// queries whose balls are large enough to be diffusion-bound (used by the
/// Fig. 5 scalability case study, where parallelism effects only show on
/// non-trivial sub-graphs).
pub fn sample_hub_seeds(g: &CsrGraph, count: usize) -> Vec<NodeId> {
    let mut by_degree: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&v| g.degree(v) > 0)
        .collect();
    by_degree.sort_unstable_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    by_degree.truncate(count);
    by_degree.sort_unstable();
    by_degree
}

/// A Zipf-skewed query mix: `count` seeds drawn (with repetition) from
/// the `distinct` highest-degree nodes, where the rank-`i` candidate is
/// drawn with probability proportional to `1 / (i + 1)^exponent`.
///
/// This is the serving-traffic model behind the shared sub-graph cache
/// experiments: real PPR query streams are dominated by a small set of
/// hot (hub) seeds, so `exponent = 1.0` (classic Zipf) makes most of a
/// batch hit the same few balls. `exponent = 0.0` degenerates to a
/// uniform mix over the candidates. Candidates are ranked by descending
/// degree (ties by ascending id) so rank 0 is the hottest hub, and the
/// whole mix is deterministic under `rng_seed` (the `rand` shim is
/// seeded, not the OS).
///
/// Returns an empty vector when the graph has no usable candidates.
///
/// # Panics
///
/// Panics if `exponent` is negative or non-finite.
pub fn sample_zipf_queries(
    g: &CsrGraph,
    count: usize,
    distinct: usize,
    exponent: f64,
    rng_seed: u64,
) -> Vec<NodeId> {
    sample_zipf_queries_offset(g, count, distinct, 0, exponent, rng_seed)
}

/// As [`sample_zipf_queries`], drawing from the `distinct` candidates
/// starting at degree rank `offset` (rank `offset` is the mix's hottest
/// seed). Rotating `offset` between batches models a **traffic shift** —
/// yesterday's hot seed set going cold while a disjoint set heats up —
/// the scenario that separates windowed cache hit rates from stale
/// cumulative ones in the fig5 serving study.
///
/// Returns an empty vector when no candidate has rank ≥ `offset`.
///
/// # Panics
///
/// Panics if `exponent` is negative or non-finite.
pub fn sample_zipf_queries_offset(
    g: &CsrGraph,
    count: usize,
    distinct: usize,
    offset: usize,
    exponent: f64,
    rng_seed: u64,
) -> Vec<NodeId> {
    assert!(
        exponent.is_finite() && exponent >= 0.0,
        "Zipf exponent must be finite and non-negative, got {exponent}"
    );
    // Rank candidates hottest-first (unlike `sample_hub_seeds`, which
    // re-sorts its result by id for batch files).
    let mut candidates: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&v| g.degree(v) > 0)
        .collect();
    candidates.sort_unstable_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    if offset >= candidates.len() {
        return Vec::new();
    }
    candidates.drain(..offset);
    candidates.truncate(distinct);
    if candidates.is_empty() || count == 0 {
        return Vec::new();
    }
    // Inverse-CDF sampling over the (normalized) Zipf weights.
    let mut cumulative = Vec::with_capacity(candidates.len());
    let mut total = 0.0f64;
    for rank in 0..candidates.len() {
        total += 1.0 / ((rank + 1) as f64).powf(exponent);
        cumulative.push(total);
    }
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            let rank = cumulative.partition_point(|&c| c <= u);
            candidates[rank.min(candidates.len() - 1)]
        })
        .collect()
}

/// An experiment-ready corpus graph: the stand-in plus its provenance.
#[derive(Debug, Clone)]
pub struct CorpusGraph {
    /// Which paper graph this stands in for.
    pub paper: PaperGraph,
    /// The scale factor used (1.0 = full Table II size).
    pub scale: f64,
    /// The generated graph.
    pub graph: CsrGraph,
}

impl CorpusGraph {
    /// Generates a stand-in at the given scale (1.0 = paper size).
    ///
    /// # Panics
    ///
    /// Panics if generation fails (cannot happen for the fixed corpus
    /// parameters and scales in `(0, 1]`).
    pub fn generate(paper: PaperGraph, scale: f64, seed: u64) -> Self {
        let graph = if (scale - 1.0).abs() < f64::EPSILON {
            paper.generate(seed)
        } else {
            paper.generate_scaled(scale, seed)
        }
        .expect("corpus generation with valid scale");
        CorpusGraph {
            paper,
            scale,
            graph,
        }
    }

    /// A human-readable label, e.g. `"G1 (citeseer)"` or
    /// `"G4 (com-amazon, 2% scale)"`.
    pub fn label(&self) -> String {
        if (self.scale - 1.0).abs() < f64::EPSILON {
            self.paper.to_string()
        } else {
            format!(
                "{} ({}, {:.0}% scale)",
                self.paper.id(),
                self.paper.name(),
                self.scale * 100.0
            )
        }
    }
}

/// Experiment sizing parsed from command-line arguments.
///
/// Every experiment binary accepts:
///
/// * `--full` — run at the paper's full graph sizes and seed counts
///   (minutes to hours for the large graphs);
/// * `--seeds N` — override the number of query seeds per graph;
/// * `--scale F` — override the corpus scale factor (0 < F ≤ 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Whether `--full` was requested.
    pub full: bool,
    /// Seeds per graph.
    pub seeds: usize,
    /// Scale for the small corpus graphs G1–G3.
    pub small_scale: f64,
    /// Scale for the large corpus graphs G4–G6.
    pub large_scale: f64,
}

impl ExperimentScale {
    /// The default quick configuration: full-size G1–G3 (they are small)
    /// and 2 %-scale G4–G6, a handful of seeds.
    pub fn quick(seeds: usize) -> Self {
        ExperimentScale {
            full: false,
            seeds,
            small_scale: 1.0,
            large_scale: 0.02,
        }
    }

    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed values (these are
    /// experiment binaries; fail fast is the right behaviour).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I, default_seeds: usize) -> Self {
        let mut scale = ExperimentScale::quick(default_seeds);
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => {
                    scale.full = true;
                    scale.small_scale = 1.0;
                    scale.large_scale = 1.0;
                }
                "--seeds" => {
                    let v = it.next().expect("--seeds needs a value");
                    scale.seeds = v.parse().expect("--seeds needs an integer");
                }
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    let f: f64 = v.parse().expect("--scale needs a float");
                    assert!(f > 0.0 && f <= 1.0, "--scale must be in (0, 1]");
                    scale.small_scale = f;
                    scale.large_scale = f;
                }
                other => {
                    panic!("unknown argument {other:?} (supported: --full, --seeds N, --scale F)")
                }
            }
        }
        scale
    }

    /// The scale to use for a given corpus graph.
    pub fn scale_for(&self, paper: PaperGraph) -> f64 {
        if paper.is_large() {
            self.large_scale
        } else {
            self.small_scale
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_connected() {
        let g = PaperGraph::G1Citeseer.generate_scaled(0.1, 7).unwrap();
        let a = sample_seeds(&g, 5, 42);
        let b = sample_seeds(&g, 5, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        for &s in &a {
            assert!(g.degree(s) > 0);
        }
    }

    #[test]
    fn seed_count_capped_by_component() {
        let g = meloppr_graph::generators::path(4).unwrap();
        let seeds = sample_seeds(&g, 100, 1);
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn zipf_mix_is_deterministic_and_skewed() {
        let g = PaperGraph::G1Citeseer.generate_scaled(0.2, 7).unwrap();
        let a = sample_zipf_queries(&g, 512, 64, 1.0, 42);
        let b = sample_zipf_queries(&g, 512, 64, 1.0, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 512);
        // Every draw is a positive-degree candidate.
        for &s in &a {
            assert!(g.degree(s) > 0);
        }
        // Skew: under Zipf(1.0) over 64 candidates, rank 0 carries ~21%
        // of the mass, so some seed must clearly dominate.
        let mut counts = std::collections::HashMap::new();
        for &s in &a {
            *counts.entry(s).or_insert(0usize) += 1;
        }
        let max_count = *counts.values().max().unwrap();
        assert!(
            max_count > 512 / 10,
            "no hot seed in a Zipf(1.0) mix: max {max_count}"
        );
        // Distinct seeds are bounded by the candidate pool.
        assert!(counts.len() <= 64);
        // A different seed gives a different (but equally valid) stream.
        let c = sample_zipf_queries(&g, 512, 64, 1.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let g = PaperGraph::G1Citeseer.generate_scaled(0.2, 7).unwrap();
        let mix = sample_zipf_queries(&g, 2000, 20, 0.0, 9);
        let mut counts = std::collections::HashMap::new();
        for &s in &mix {
            *counts.entry(s).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 20, "uniform mix should touch every candidate");
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        assert!(max < min * 3, "uniform mix too skewed: {min}..{max}");
    }

    #[test]
    fn zipf_edge_cases() {
        let g = PaperGraph::G1Citeseer.generate_scaled(0.1, 7).unwrap();
        assert!(sample_zipf_queries(&g, 0, 8, 1.0, 1).is_empty());
        let single = sample_zipf_queries(&g, 16, 1, 1.0, 1);
        assert_eq!(single.len(), 16);
        assert!(single.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn zipf_offset_rotates_to_a_disjoint_seed_set() {
        let g = PaperGraph::G1Citeseer.generate_scaled(0.2, 7).unwrap();
        let hot = sample_zipf_queries_offset(&g, 256, 16, 0, 1.0, 42);
        let rotated = sample_zipf_queries_offset(&g, 256, 16, 16, 1.0, 42);
        assert_eq!(hot, sample_zipf_queries(&g, 256, 16, 1.0, 42));
        let hot_set: std::collections::HashSet<_> = hot.iter().collect();
        assert!(
            rotated.iter().all(|s| !hot_set.contains(s)),
            "rotated mix must be disjoint from the original hot set"
        );
        // Past the candidate pool there is nothing to draw.
        assert!(sample_zipf_queries_offset(&g, 8, 4, g.num_nodes(), 1.0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "Zipf exponent")]
    fn zipf_rejects_negative_exponent() {
        let g = meloppr_graph::generators::path(4).unwrap();
        let _ = sample_zipf_queries(&g, 4, 2, -1.0, 1);
    }

    #[test]
    fn corpus_graph_labels() {
        let cg = CorpusGraph::generate(PaperGraph::G1Citeseer, 1.0, 3);
        assert_eq!(cg.label(), "G1 (citeseer)");
        let cg = CorpusGraph::generate(PaperGraph::G4ComAmazon, 0.02, 3);
        assert!(cg.label().contains("2% scale"));
    }

    #[test]
    fn args_parsing() {
        let s = ExperimentScale::from_args(Vec::<String>::new(), 10);
        assert_eq!(s.seeds, 10);
        assert!(!s.full);
        assert_eq!(s.scale_for(PaperGraph::G1Citeseer), 1.0);
        assert_eq!(s.scale_for(PaperGraph::G6ComYoutube), 0.02);

        let s =
            ExperimentScale::from_args(["--full".to_string(), "--seeds".into(), "3".into()], 10);
        assert!(s.full);
        assert_eq!(s.seeds, 3);
        assert_eq!(s.scale_for(PaperGraph::G6ComYoutube), 1.0);

        let s = ExperimentScale::from_args(["--scale".to_string(), "0.5".into()], 10);
        assert_eq!(s.scale_for(PaperGraph::G1Citeseer), 0.5);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_arg_panics() {
        let _ = ExperimentScale::from_args(["--bogus".to_string()], 1);
    }
}
