//! Minimal aligned text-table rendering for experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use meloppr_bench::table::TextTable;
///
/// let mut t = TextTable::new(vec!["graph", "speedup"]);
/// t.row(vec!["G1".into(), "3.1x".into()]);
/// let s = t.render();
/// assert!(s.contains("G1"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table with a header underline.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, &width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{:<w$}", cell, w = width + 2);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let underline: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(&mut out, &underline);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a byte count as a human-readable MB string (Table II style).
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.3}", bytes as f64 / 1e6)
}

/// Formats a ratio as the paper's `N.NNx` style.
pub fn fmt_ratio(r: f64) -> String {
    if r >= 100.0 {
        format!("{r:.0}x")
    } else if r >= 10.0 {
        format!("{r:.1}x")
    } else {
        format!("{r:.2}x")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equally long (trailing pad).
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("-"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_mb(1_500_000), "1.500");
        assert_eq!(fmt_ratio(3.17159), "3.17x");
        assert_eq!(fmt_ratio(31.7159), "31.7x");
        assert_eq!(fmt_ratio(317.159), "317x");
        assert_eq!(fmt_pct(0.805), "80.5%");
    }
}
