//! Shared experiment measurement loops (Fig. 6 / Fig. 7 cores).
//!
//! All engines are driven through the unified `PprBackend` API, so each
//! loop builds one backend per solver and feeds it the same
//! `QueryRequest`s; the normalized `QueryStats` feed the calibrated CPU
//! cost model uniformly.

use std::time::Instant;

use meloppr_core::backend::{BatchExecutor, LocalPpr, Meloppr, PprBackend, QueryRequest};
use meloppr_core::{exact_top_k, mean_precision, precision_at_k, MelopprParams, SelectionStrategy};
use meloppr_fpga::{FpgaHybrid, HybridConfig};
use meloppr_graph::{CsrGraph, NodeId};

use crate::costmodel::CpuCostModel;

/// Average MeLoPPR precision over an ensemble of seeds, against exact
/// ground truth.
///
/// # Panics
///
/// Panics on query errors (experiment binaries fail fast).
pub fn measure_precision(graph: &CsrGraph, seeds: &[NodeId], params: &MelopprParams) -> f64 {
    let backend = Meloppr::new(graph, params.clone()).expect("valid params");
    let values: Vec<f64> = seeds
        .iter()
        .map(|&s| {
            let outcome = backend.query(&QueryRequest::new(s)).expect("query");
            let exact = exact_top_k(graph, s, &params.ppr).expect("ground truth");
            precision_at_k(&outcome.ranking, &exact, params.ppr.k)
        })
        .collect();
    mean_precision(&values).unwrap_or(0.0)
}

/// One point of the Fig. 7 trade-off: everything measured for one graph at
/// one selection ratio, averaged over the seed ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Selection ratio used.
    pub ratio: f64,
    /// Mean top-k precision of MeLoPPR-CPU (float engine).
    pub precision: f64,
    /// Mean top-k precision of MeLoPPR-FPGA (fixed-point engine).
    pub precision_fpga: f64,
    /// Modelled LocalPPR-CPU baseline latency (ms).
    pub baseline_ms: f64,
    /// Modelled MeLoPPR-CPU latency (ms).
    pub cpu_ms: f64,
    /// Simulated MeLoPPR-FPGA latency (ms).
    pub fpga_ms: f64,
    /// Speedup of MeLoPPR-CPU over the baseline.
    pub cpu_speedup: f64,
    /// Speedup of MeLoPPR-FPGA over the baseline.
    pub fpga_speedup: f64,
    /// Fraction of the FPGA query spent in host BFS (Fig. 7 light-blue).
    pub bfs_fraction: f64,
    /// Mean diffusions per query.
    pub diffusions: f64,
}

/// Measures one trade-off point (Fig. 7 core loop).
///
/// # Panics
///
/// Panics on query errors (experiment binaries fail fast).
pub fn measure_tradeoff(
    graph: &CsrGraph,
    seeds: &[NodeId],
    base_params: &MelopprParams,
    ratio: f64,
    cost: &CpuCostModel,
    hybrid: &HybridConfig,
) -> TradeoffPoint {
    let params = base_params
        .clone()
        .with_selection(SelectionStrategy::TopFraction(ratio));
    let baseline = LocalPpr::new(graph, params.ppr).expect("valid params");
    let engine = Meloppr::new(graph, params.clone()).expect("valid params");
    let fpga = FpgaHybrid::new(graph, params.clone(), *hybrid).expect("valid hybrid");

    let mut precisions = Vec::with_capacity(seeds.len());
    let mut precisions_fpga = Vec::with_capacity(seeds.len());
    let (mut base_ns, mut cpu_ns, mut fpga_ns, mut bfs_frac, mut diffusions) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);

    for &s in seeds {
        let req = QueryRequest::new(s);
        let exact = exact_top_k(graph, s, &params.ppr).expect("ground truth");
        let base = baseline.query(&req).expect("baseline");
        base_ns += cost.query_ns(&base.stats);

        let outcome = engine.query(&req).expect("cpu query");
        precisions.push(precision_at_k(&outcome.ranking, &exact, params.ppr.k));
        cpu_ns += cost.query_ns(&outcome.stats);
        diffusions += outcome.stats.total_diffusions as f64;

        let hybrid_outcome = fpga.query(&req).expect("fpga query");
        precisions_fpga.push(precision_at_k(
            &hybrid_outcome.ranking,
            &exact,
            params.ppr.k,
        ));
        // The accelerator's own timing model is authoritative; it also
        // reports the host-BFS share of that total.
        let total_ns = hybrid_outcome
            .stats
            .latency_estimate_ns
            .expect("fpga backend reports latency");
        let host_ns = hybrid_outcome
            .stats
            .host_latency_ns
            .expect("fpga backend reports host split");
        fpga_ns += total_ns;
        bfs_frac += host_ns / total_ns.max(1.0);
    }
    let n = seeds.len().max(1) as f64;
    let (base_ns, cpu_ns, fpga_ns) = (base_ns / n, cpu_ns / n, fpga_ns / n);
    TradeoffPoint {
        ratio,
        precision: mean_precision(&precisions).unwrap_or(0.0),
        precision_fpga: mean_precision(&precisions_fpga).unwrap_or(0.0),
        baseline_ms: base_ns / 1e6,
        cpu_ms: cpu_ns / 1e6,
        fpga_ms: fpga_ns / 1e6,
        cpu_speedup: base_ns / cpu_ns.max(1.0),
        fpga_speedup: base_ns / fpga_ns.max(1.0),
        bfs_fraction: bfs_frac / n,
        diffusions: diffusions / n,
    }
}

/// Measured wall-clock comparison of batched vs sequential serving for
/// one backend over one seed workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchThroughput {
    /// Worker threads the batched run used.
    pub workers: usize,
    /// Wall clock of the sequential `query` loop, milliseconds.
    pub sequential_ms: f64,
    /// Wall clock of the `BatchExecutor` run, milliseconds.
    pub batch_ms: f64,
    /// `sequential_ms / batch_ms` (> 1 means batching won).
    pub speedup: f64,
    /// Batch throughput, queries per second.
    pub batch_qps: f64,
}

/// Measures batched-executor throughput against a sequential `query`
/// loop on the same backend and seeds (the serving-throughput study the
/// Fig. 5/7 binaries report alongside the paper's figures).
///
/// Both paths produce identical outcomes (asserted); only the wall
/// clocks differ. On a single-core host the speedup hovers around 1.0 —
/// workspace reuse still applies to both paths.
///
/// # Panics
///
/// Panics on query errors (experiment binaries fail fast).
pub fn measure_batch_throughput<B>(backend: &B, seeds: &[NodeId], workers: usize) -> BatchThroughput
where
    B: PprBackend + Sync + ?Sized,
{
    let reqs: Vec<QueryRequest> = seeds.iter().map(|&s| QueryRequest::new(s)).collect();
    // Warm the backend's workspace pool so both paths run hot.
    if let Some(&first) = seeds.first() {
        backend.query(&QueryRequest::new(first)).expect("warm-up");
    }

    let started = Instant::now();
    let sequential: Vec<_> = reqs
        .iter()
        .map(|r| backend.query(r).expect("sequential query"))
        .collect();
    let sequential_ms = started.elapsed().as_secs_f64() * 1e3;

    let batch = BatchExecutor::new(workers)
        .expect("worker count")
        .run(backend, &reqs)
        .expect("batched query");
    let batch_ms = batch.stats.wall_clock.as_secs_f64() * 1e3;
    assert_eq!(
        batch.outcomes, sequential,
        "batched outcomes diverged from sequential"
    );

    BatchThroughput {
        workers,
        sequential_ms,
        batch_ms,
        speedup: sequential_ms / batch_ms.max(1e-9),
        batch_qps: batch.stats.throughput_qps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::sample_seeds;
    use meloppr_graph::generators::corpus::PaperGraph;

    #[test]
    fn precision_increases_with_ratio() {
        let g = PaperGraph::G2Cora.generate_scaled(0.15, 9).unwrap();
        let seeds = sample_seeds(&g, 4, 1);
        let mut params = MelopprParams::paper_defaults();
        params.ppr.k = 20;
        let lo = measure_precision(
            &g,
            &seeds,
            &params
                .clone()
                .with_selection(SelectionStrategy::TopFraction(0.01)),
        );
        let hi = measure_precision(
            &g,
            &seeds,
            &params.with_selection(SelectionStrategy::TopFraction(1.0)),
        );
        assert!(hi >= lo, "precision lo={lo} hi={hi}");
        assert!(hi > 0.9, "full selection should be near exact, got {hi}");
    }

    #[test]
    fn batch_throughput_is_coherent_and_parallel_batching_wins() {
        let g = PaperGraph::G2Cora.generate_scaled(0.3, 9).unwrap();
        let seeds = sample_seeds(&g, 24, 7);
        let mut params = MelopprParams::paper_defaults();
        params.ppr.k = 20;
        params.selection = SelectionStrategy::TopFraction(0.1);
        let backend = Meloppr::new(&g, params).unwrap();
        let t = measure_batch_throughput(&backend, &seeds, 4);
        assert_eq!(t.workers, 4);
        assert!(t.sequential_ms > 0.0 && t.batch_ms > 0.0);
        assert!(t.batch_qps > 0.0);
        // The wall-clock win needs real cores; on a single-core host the
        // batched path must merely stay in the same ballpark (workspace
        // reuse applies to both paths).
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 4 {
            assert!(
                t.speedup > 1.0,
                "4-worker batch should beat sequential on {cores} cores: {t:?}"
            );
        } else {
            assert!(t.speedup > 0.3, "batching collapsed: {t:?}");
        }
    }

    #[test]
    fn tradeoff_point_is_coherent() {
        let g = PaperGraph::G1Citeseer.generate_scaled(0.15, 2).unwrap();
        let seeds = sample_seeds(&g, 3, 5);
        let mut params = MelopprParams::paper_defaults();
        params.ppr.k = 20;
        let point = measure_tradeoff(
            &g,
            &seeds,
            &params,
            0.02,
            &CpuCostModel::default(),
            &HybridConfig::default(),
        );
        assert!(point.precision > 0.0 && point.precision <= 1.0);
        assert!(point.baseline_ms > 0.0);
        assert!(
            point.fpga_speedup > 1.0,
            "FPGA should beat the modelled CPU"
        );
        assert!((0.0..=1.0).contains(&point.bfs_fraction));
        assert!(point.diffusions >= 1.0);
    }
}
