//! # MeLoPPR bench — the experiment harness
//!
//! Regenerates every table and figure of the MeLoPPR paper's evaluation
//! (§VI) plus the ablation studies listed in `DESIGN.md` §5. The library
//! half provides shared infrastructure; each experiment is a binary:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Fig. 5 (FPGA scalability)        | `fig5_scalability` |
//! | Table I (resource utilization)   | `table1_resources` |
//! | Table II (memory comparison)     | `table2_memory` |
//! | Fig. 6 (sparsity & precision)    | `fig6_sparsity` |
//! | Fig. 7 (precision–latency)       | `fig7_tradeoff` |
//! | §V-A fixed-point study           | `study_fixed_point` |
//! | §V-B global-table study          | `study_global_table` |
//! | Fig. 2 design-space taxonomy     | `study_design_space` |
//! | Residual-policy ablation         | `ablation_residual` |
//! | Stage-split ablation             | `ablation_stages` |
//! | Parallel stage-2 (future work)   | `ablation_parallel` |
//!
//! Each binary runs in a scaled-down *quick* mode by default and accepts
//! `--full` (paper-size graphs), `--seeds N` and `--scale F`; see
//! [`workload::ExperimentScale`]. All runs are deterministic.
//!
//! Criterion micro-benchmarks of the native Rust kernels live under
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod costmodel;
pub mod runner;
pub mod table;
pub mod workload;

pub use costmodel::CpuCostModel;
pub use runner::{
    measure_batch_throughput, measure_precision, measure_tradeoff, BatchThroughput, TradeoffPoint,
};
pub use table::TextTable;
pub use workload::{
    sample_seeds, sample_zipf_queries, sample_zipf_queries_offset, CorpusGraph, ExperimentScale,
};
