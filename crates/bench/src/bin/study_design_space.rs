//! **Study — Fig. 2 taxonomy**: on-chip space vs off-chip accesses vs
//! precision, quantified for the four algorithm families the paper's
//! motivation contrasts:
//!
//! * Monte-Carlo random walk — Fig. 2(a): ~zero working set, every step an
//!   off-chip access;
//! * LocalPPR (whole depth-L ball) — Fig. 2(b): all accesses on-chip, but
//!   the working set is the exponentially-grown ball;
//! * forward push — the index-free software family of §III;
//! * MeLoPPR — Fig. 2(c): balanced.
//!
//! "Working set" is modelled bytes resident during the query; "off-chip"
//! counts adjacency reads against the full graph (BFS scans, walk steps,
//! push touches); precision is vs the length-L ground truth.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin study_design_space
//! [--seeds N] [--scale F]`

use meloppr_bench::table::TextTable;
use meloppr_bench::{sample_seeds, CorpusGraph, ExperimentScale};
use meloppr_core::backend::{LocalPpr, Meloppr, MonteCarlo, PprBackend, QueryRequest};
use meloppr_core::push::forward_push;
use meloppr_core::{
    exact_top_k, mean_precision, precision_at_k, MelopprParams, PprParams, SelectionStrategy,
};
use meloppr_graph::generators::corpus::PaperGraph;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 10);
    let paper = PaperGraph::G2Cora;
    let corpus = CorpusGraph::generate(paper, scale.scale_for(paper), 42);
    let g = &corpus.graph;
    let seeds = sample_seeds(g, scale.seeds, 17);
    let ppr = PprParams::new(0.85, 6, 100).unwrap();

    println!("== Fig. 2 design-space study: space vs accesses vs precision ==");
    println!(
        "graph: {}  seeds: {}  k = {}\n",
        corpus.label(),
        seeds.len(),
        ppr.k
    );

    #[derive(Default)]
    struct Acc {
        space: f64,
        offchip: f64,
        precision: Vec<f64>,
    }
    let mut rows: Vec<(&str, Acc)> = vec![
        ("MC random walk (10k walks)", Acc::default()),
        ("forward push (eps 1e-7)", Acc::default()),
        ("LocalPPR (depth-L ball)", Acc::default()),
        ("MeLoPPR (3+3, 5%)", Acc::default()),
    ];

    let params = MelopprParams {
        ppr,
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    // Three of the four families are unified-API backends; forward push
    // stays a free function (it is a software comparator, not a serving
    // backend).
    let mc = MonteCarlo::new(g, ppr, 10_000, 7).unwrap();
    let baseline = LocalPpr::new(g, ppr).unwrap();
    let meloppr = Meloppr::new(g, params).unwrap();

    for &s in &seeds {
        let exact = exact_top_k(g, s, &ppr).unwrap();
        let req = QueryRequest::new(s);

        let outcome = mc.query(&req).unwrap();
        // Terminal counts only: key + count per aggregate entry.
        rows[0].1.space += (outcome.stats.aggregate_entries * 16) as f64;
        rows[0].1.offchip += outcome.stats.random_walk_steps as f64;
        rows[0]
            .1
            .precision
            .push(precision_at_k(&outcome.ranking, &exact, ppr.k));

        let push = forward_push(g, s, ppr.alpha, 1e-7, ppr.k).unwrap();
        rows[1].1.space += (push.touched_nodes * 24) as f64; // p + r + queue entry
        rows[1].1.offchip += push.edges_touched as f64;
        rows[1]
            .1
            .precision
            .push(precision_at_k(&push.ranking, &exact, ppr.k));

        let outcome = baseline.query(&req).unwrap();
        rows[2].1.space += outcome.stats.peak_memory_bytes as f64;
        rows[2].1.offchip += outcome.stats.bfs_edges_scanned as f64;
        rows[2]
            .1
            .precision
            .push(precision_at_k(&outcome.ranking, &exact, ppr.k));

        let outcome = meloppr.query(&req).unwrap();
        rows[3].1.space += outcome.stats.peak_task_memory_bytes as f64;
        rows[3].1.offchip += outcome.stats.bfs_edges_scanned as f64;
        rows[3]
            .1
            .precision
            .push(precision_at_k(&outcome.ranking, &exact, ppr.k));
    }

    let n = seeds.len().max(1) as f64;
    let mut table = TextTable::new(vec![
        "algorithm",
        "working set (KB)",
        "off-chip accesses",
        "precision",
    ]);
    for (name, acc) in &rows {
        table.row(vec![
            name.to_string(),
            format!("{:.1}", acc.space / n / 1024.0),
            format!("{:.0}", acc.offchip / n),
            format!(
                "{:.1}%",
                mean_precision(&acc.precision).unwrap_or(0.0) * 100.0
            ),
        ]);
    }
    table.print();
    println!();
    println!("expected taxonomy (Fig. 2): MC = tiny space, huge accesses; LocalPPR =");
    println!("big space, few accesses (one BFS); MeLoPPR sits between with balanced");
    println!("space and accesses. Push's precision differs because it estimates the");
    println!("untruncated PPR rather than the length-L definition.");
}
