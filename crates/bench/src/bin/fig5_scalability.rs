//! **Experiment E1 — Fig. 5**: FPGA scalability with parallelism
//! `P ∈ {1, 2, 4, 8, 16}` on G1 (citeseer), 100 MHz.
//!
//! Fig. 5 benchmarks a single *graph diffusion operation* (stage-one, on
//! the depth-`l1` ball): the CPU bar is the NetworkX-class software
//! diffusion; the FPGA bars split into scheduling stalls, ideal diffusion
//! cycles, and host↔device data movement. Paper shapes: > 10× latency
//! reduction scaling P 1 → 16; scheduling < 20 % at P = 2 and < 40 %
//! beyond.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin fig5_scalability
//! [--full] [--seeds N] [--scale F]`

use std::sync::Arc;
use std::time::Instant;

use meloppr_bench::table::TextTable;
use meloppr_bench::workload::{sample_hub_seeds, sample_zipf_queries, sample_zipf_queries_offset};
use meloppr_bench::{measure_batch_throughput, CorpusGraph, CpuCostModel, ExperimentScale};
use meloppr_core::backend::{BatchExecutor, Meloppr, QueryRequest};
use meloppr_core::diffusion::{diffuse_from_seed, diffuse_into, DiffusionConfig, DiffusionScratch};
use meloppr_core::{build_index, BallIndex, CacheConsumer, ConsumerStats, IndexBuildReport};
use meloppr_core::{diffuse_quantized, precision_at_k, CompactBall, QCtx, Qu32, QuantScratch};
use meloppr_core::{format_bytes, BallStore, CacheBudget, ConcurrentSubgraphCache, PrecisionClass};
use meloppr_core::{MelopprParams, PprBackend, PprParams, SelectionStrategy};
use meloppr_fpga::{
    cycles_to_ns, AcceleratorConfig, CycleBreakdown, FixedPointFormat, FpgaAccelerator,
};
use meloppr_graph::generators::barabasi_albert;
use meloppr_graph::generators::corpus::PaperGraph;
use meloppr_graph::{bfs_ball, GraphView, Subgraph};

const L1: usize = 3; // stage-one depth (L = 6 = 3 + 3)

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 5);
    let paper = PaperGraph::G1Citeseer;
    let corpus = CorpusGraph::generate(paper, scale.scale_for(paper), 42);
    let g = &corpus.graph;
    // Hub seeds: the scalability study needs diffusion-bound sub-graphs.
    let seeds = sample_hub_seeds(g, scale.seeds);
    let cost = CpuCostModel::default();

    println!("== Fig. 5: FPGA scalability for one graph diffusion (stage one, l1 = 3) ==");
    println!(
        "graph: {}  |V|={} |E|={}  hub seeds: {:?}\n",
        corpus.label(),
        g.num_nodes(),
        g.num_edges(),
        seeds
    );

    // Extract stage-one balls once; they are shared by every P.
    let subs: Vec<Subgraph> = seeds
        .iter()
        .map(|&s| {
            let ball = bfs_ball(g, s, L1 as u32).expect("bfs");
            Subgraph::extract(g, &ball).expect("extract")
        })
        .collect();
    let avg_nodes: f64 =
        subs.iter().map(|s| s.num_nodes() as f64).sum::<f64>() / subs.len().max(1) as f64;
    let avg_edges: f64 =
        subs.iter().map(|s| s.num_edges() as f64).sum::<f64>() / subs.len().max(1) as f64;
    println!("stage-one balls: avg {avg_nodes:.0} nodes, {avg_edges:.0} edges");

    // CPU bar: NetworkX-class diffusion cost over the same balls.
    let alpha = 0.85;
    let config = DiffusionConfig::new(alpha, L1).expect("config");
    let mut cpu_ns = 0.0;
    for sub in &subs {
        let out = diffuse_from_seed(sub, sub.seed_local(), config).expect("diffusion");
        cpu_ns += out.work.edge_updates as f64 * cost.ns_per_diffusion_edge
            + sub.num_nodes() as f64 * L1 as f64 * cost.ns_per_node_touch;
    }
    let cpu_ms = cpu_ns / subs.len().max(1) as f64 / 1e6;
    println!("CPU (modelled, NetworkX-class): {cpu_ms:.3} ms  (paper bar: ~9 ms)\n");

    let mut table = TextTable::new(vec![
        "P",
        "total ms",
        "sched ms",
        "diff ms",
        "datamove ms",
        "sched %",
        "speedup vs P=1",
        "diff speedup",
        "speedup vs CPU",
    ]);
    let mut p1_total: Option<f64> = None;
    let mut p1_diff: Option<f64> = None;
    // (P, total ms, scheduling ms, diffusion ms, data-movement ms) for
    // the machine-readable report.
    let mut fpga_rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for p in [1usize, 2, 4, 8, 16] {
        let accel = FpgaAccelerator::new(AcceleratorConfig {
            parallelism: p,
            ..AcceleratorConfig::default()
        })
        .expect("accel");
        let clock = accel.config().clock_mhz;
        let mut cycles = CycleBreakdown::default();
        for sub in &subs {
            let fmt =
                FixedPointFormat::for_graph(g, alpha, 10, Default::default()).expect("format");
            cycles.data_movement += accel.stream_in_cycles(sub);
            let result = accel
                .run_diffusion(sub, fmt.max_value(), L1, &fmt)
                .expect("fpga diffusion");
            cycles.diffusion += result.cycles.diffusion;
            cycles.scheduling += result.cycles.scheduling;
        }
        let n = subs.len().max(1) as f64;
        let total_ms = cycles_to_ns(cycles.total(), clock) / n / 1e6;
        let diff_ms = cycles_to_ns(cycles.diffusion, clock) / n / 1e6;
        let p1 = *p1_total.get_or_insert(total_ms);
        let p1d = *p1_diff.get_or_insert(diff_ms);
        let fpga_work = cycles.diffusion + cycles.scheduling;
        let sched_pct = if fpga_work > 0 {
            cycles.scheduling as f64 / fpga_work as f64 * 100.0
        } else {
            0.0
        };
        fpga_rows.push((
            p,
            total_ms,
            cycles_to_ns(cycles.scheduling, clock) / n / 1e6,
            cycles_to_ns(cycles.diffusion, clock) / n / 1e6,
            cycles_to_ns(cycles.data_movement, clock) / n / 1e6,
        ));
        table.row(vec![
            p.to_string(),
            format!("{total_ms:.4}"),
            format!("{:.4}", cycles_to_ns(cycles.scheduling, clock) / n / 1e6),
            format!("{:.4}", cycles_to_ns(cycles.diffusion, clock) / n / 1e6),
            format!("{:.4}", cycles_to_ns(cycles.data_movement, clock) / n / 1e6),
            format!("{sched_pct:.1}%"),
            format!("{:.2}x", p1 / total_ms),
            format!("{:.2}x", p1d / diff_ms),
            format!("{:.1}x", cpu_ms / total_ms),
        ]);
    }
    table.print();
    println!();
    println!("paper reference: >10x diffusion-latency reduction P=1 -> P=16;");
    println!("scheduling overhead < 20% at P=2, < 40% for P>2 (of FPGA-side work).");

    // Serving-side scalability: the batched executor (one workspace per
    // worker) over full staged queries on the same hub seeds.
    println!();
    println!("== batched serving: query_batch workers vs sequential query ==");
    let staged = MelopprParams {
        ppr: PprParams::new(alpha, 6, 20).expect("params"),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    let backend = Meloppr::new(g, staged).expect("backend");
    let mut batch_table = TextTable::new(vec![
        "workers",
        "sequential ms",
        "batch ms",
        "speedup",
        "batch qps",
    ]);
    for workers in [1usize, 2, 4, 8] {
        let t = measure_batch_throughput(&backend, &seeds, workers);
        batch_table.row(vec![
            workers.to_string(),
            format!("{:.2}", t.sequential_ms),
            format!("{:.2}", t.batch_ms),
            format!("{:.2}x", t.speedup),
            format!("{:.0}", t.batch_qps),
        ]);
    }
    batch_table.print();
    println!(
        "(wall-clock speedup needs real cores; this host reports {})",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    // Shared-cache serving under skewed (Zipf) traffic: the same staged
    // backend with and without a ConcurrentSubgraphCache shared by all
    // batch workers. The win is counted in deterministic work units (ball
    // extractions and BFS edge scans), not wall clock, so it shows even
    // on a 1-core host.
    println!();
    println!("== shared sub-graph cache: Zipf(1.0) traffic, extractions vs queries ==");
    let staged = MelopprParams {
        ppr: PprParams::new(alpha, 6, 20).expect("params"),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    let queries = 256.max(scale.seeds * 16);
    let mix = sample_zipf_queries(g, queries, 64, 1.0, 42);
    let reqs: Vec<QueryRequest> = mix.iter().map(|&s| QueryRequest::new(s)).collect();
    let executor = BatchExecutor::new(4).expect("executor");

    let uncached = Meloppr::new(g, staged.clone()).expect("backend");
    let cold = executor.run(&uncached, &reqs).expect("uncached batch");

    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let cached_backend = Meloppr::new(g, staged)
        .expect("backend")
        .with_shared_cache(Arc::clone(&cache));
    let warm = executor.run(&cached_backend, &reqs).expect("cached batch");
    assert_eq!(
        cold.outcomes.iter().map(|o| &o.ranking).collect::<Vec<_>>(),
        warm.outcomes.iter().map(|o| &o.ranking).collect::<Vec<_>>(),
        "shared cache must not change rankings"
    );

    let cache_stats = warm.stats.cache.expect("cache stats (consumer-attributed)");
    let mut cache_table = TextTable::new(vec![
        "mode",
        "queries",
        "ball extractions",
        "bfs edges",
        "wall ms",
    ]);
    cache_table.row(vec![
        "uncached".into(),
        cold.stats.queries.to_string(),
        cold.stats.total_diffusions.to_string(),
        cold.stats.bfs_edges_scanned.to_string(),
        format!("{:.2}", cold.stats.wall_clock.as_secs_f64() * 1e3),
    ]);
    cache_table.row(vec![
        "shared cache".into(),
        warm.stats.queries.to_string(),
        cache_stats.extractions.to_string(),
        warm.stats.bfs_edges_scanned.to_string(),
        format!("{:.2}", warm.stats.wall_clock.as_secs_f64() * 1e3),
    ]);
    cache_table.print();
    println!(
        "cache: {} ball lookups, {:.0}% served without BFS, {} singleflight shares, \
         {:.1}x fewer extractions than lookups",
        cache_stats.lookups(),
        cache_stats.hit_rate() * 100.0,
        cache_stats.shared,
        cache_stats.lookups() as f64 / cache_stats.extractions.max(1) as f64,
    );

    // Traffic shift: yesterday's hot seed set goes cold and a disjoint
    // set heats up (Zipf seed-set rotation mid-run). The backend's
    // consumer tracks two hit rates over its own lookups: the cumulative
    // lifetime average — which stays anchored to the warm phase and
    // over-promises — and the exact sliding-window rate that estimate()
    // actually discounts BFS by, which converges to the new regime
    // within one window. This is the honesty property the budget router
    // depends on: the rows below show the cumulative rate staying stale
    // while the windowed rate collapses and then re-warms.
    println!();
    println!("== traffic shift: Zipf seed-set rotation, windowed vs cumulative hit rate ==");
    let staged = MelopprParams {
        ppr: PprParams::new(alpha, 6, 20).expect("params"),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    let window = 128usize;
    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let backend = Meloppr::new(g, staged)
        .expect("backend")
        .with_cache_window(window)
        .with_shared_cache(Arc::clone(&cache));
    let consumer = backend
        .cache_consumer()
        .expect("shared mode has a consumer");
    let mut shift_table = TextTable::new(vec![
        "phase",
        "queries",
        "windowed rate",
        "cumulative rate",
        "batch extractions",
    ]);
    let mut run_phase = |label: &str, queries: usize, offset: usize, rng: u64| -> (f64, f64) {
        let mix = sample_zipf_queries_offset(g, queries, 16, offset, 1.0, rng);
        let reqs: Vec<QueryRequest> = mix.iter().map(|&s| QueryRequest::new(s)).collect();
        let batch = executor.run(&backend, &reqs).expect("shift batch");
        let delta = batch.stats.cache.expect("cache stats");
        let rates = (consumer.windowed_hit_rate(), consumer.stats().hit_rate());
        shift_table.row(vec![
            label.into(),
            reqs.len().to_string(),
            format!("{:.0}%", rates.0 * 100.0),
            format!("{:.0}%", rates.1 * 100.0),
            delta.extractions.to_string(),
        ]);
        rates
    };
    run_phase("warm-up (ranks 0..16)", 96, 0, 42);
    run_phase("steady hot", 96, 0, 43);
    // A small first post-rotation batch (~one window of lookups): the
    // moment the honest and the stale rate disagree most.
    let (windowed, cumulative) = run_phase("ROTATE (ranks 64..80)", 12, 64, 44);
    run_phase("rotated, re-warmed", 96, 64, 45);
    shift_table.print();
    println!(
        "one window after rotation: windowed {:.0}% vs cumulative {:.0}% — estimate() \
         follows the windowed rate, so routing re-learns the cache within one window",
        windowed * 100.0,
        cumulative * 100.0,
    );
    assert!(
        windowed < cumulative,
        "the windowed rate ({windowed:.2}) must converge to the cold rotated traffic \
         while the cumulative rate ({cumulative:.2}) stays stale"
    );

    // Memory pressure: the same Zipf traffic under a fixed byte budget,
    // with the budget denominated two ways. An entry-count cache treats
    // a 5-node leaf ball and a hub ball as the same slot, so sizing its
    // capacity from the average ball blows straight through the byte
    // budget once the hot set skews big; the byte-budgeted cache
    // reserves measured bytes before admitting and *cannot* exceed the
    // bound — eviction is "evict LRU until the candidate fits".
    println!();
    println!("== memory pressure: fixed byte budget, entries- vs bytes-denominated eviction ==");
    let staged = MelopprParams {
        ppr: PprParams::new(alpha, 6, 20).expect("params"),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    let mix = sample_zipf_queries(g, queries, 64, 1.0, 46);
    let reqs: Vec<QueryRequest> = mix.iter().map(|&s| QueryRequest::new(s)).collect();

    // Probe the full working set with an unbounded cache.
    let unbounded = Arc::new(ConcurrentSubgraphCache::new(1 << 20));
    let probe_backend = Meloppr::new(g, staged.clone())
        .expect("backend")
        .with_shared_cache(Arc::clone(&unbounded));
    executor.run(&probe_backend, &reqs).expect("probe batch");
    let full_bytes = unbounded.resident_bytes();
    let full_entries = unbounded.resident_entries();
    let byte_budget = (full_bytes / 3).max(1);
    // The entries-denominated "equivalent": the same fraction of the
    // entry count, i.e. a capacity sized from the average ball.
    let entry_budget = (full_entries / 3).max(1);
    println!(
        "full working set: {} balls, {} — budget {} ({} avg-ball slots)",
        full_entries,
        format_bytes(full_bytes),
        format_bytes(byte_budget),
        entry_budget,
    );

    let mut pressure_table = TextTable::new(vec![
        "denomination",
        "resident",
        "vs budget",
        "balls",
        "evictions",
        "hit rate",
        "extractions",
    ]);
    let mut run_budget = |label: &str, budget: CacheBudget| -> usize {
        let cache = Arc::new(ConcurrentSubgraphCache::with_budget(budget));
        let backend = Meloppr::new(g, staged.clone())
            .expect("backend")
            .with_shared_cache(Arc::clone(&cache));
        let batch = executor.run(&backend, &reqs).expect("pressure batch");
        let delta = batch.stats.cache.expect("cache stats");
        let resident = cache.resident_bytes();
        pressure_table.row(vec![
            label.into(),
            format_bytes(resident),
            format!(
                "{:+.0}%",
                (resident as f64 / byte_budget as f64 - 1.0) * 100.0
            ),
            cache.resident_entries().to_string(),
            cache.stats().evictions.to_string(),
            format!("{:.0}%", delta.hit_rate() * 100.0),
            delta.extractions.to_string(),
        ]);
        resident
    };
    run_budget(
        "entries (avg-ball sizing)",
        CacheBudget::entries(entry_budget),
    );
    let byte_resident = run_budget("bytes (enforced)", CacheBudget::bytes(byte_budget));
    pressure_table.print();
    assert!(
        byte_resident <= byte_budget,
        "byte-budgeted cache exceeded its budget: {byte_resident} > {byte_budget}"
    );
    println!(
        "the byte-budgeted cache stays within {} by construction (reservation before \
         admission); the entry-count cache keeps whatever {} balls are hot, whatever \
         they weigh",
        format_bytes(byte_budget),
        entry_budget,
    );

    // The precision ladder on the host path: the same Zipf
    // diffusion-dominated workload, scored at each rung. Three measured
    // claims, each recorded in BENCH_fig5.json:
    //   1. a narrower rung (f32 or q16) runs the per-ball diffusion
    //      >= 1.2x faster than the exact f64 pipeline;
    //   2. the compact ball store fits >= 1.5x more residents under the
    //      same cache byte budget;
    //   3. quantized end-to-end rankings keep precision@200 >= 0.95
    //      against the exact-f64 staged baseline.
    println!();
    println!("== precision ladder: quantized diffusion on Zipf-seeded diffusion-bound balls ==");
    // Score width only matters once the dense score arrays outgrow the
    // fast caches — citeseer's 3.3k-node balls fit in L1 at any width,
    // so the rung timing uses a scale-free graph whose stage-one balls
    // are genuinely diffusion-bound (tens of thousands of nodes, within
    // the compact store's u16 local-id cap), seeded Zipf like the cache
    // sections above.
    let ladder_g = barabasi_albert(60_000, 8, 47).expect("ladder graph");
    let mut zipf_seeds = sample_zipf_queries(&ladder_g, 8, 64, 1.0, 47);
    zipf_seeds.sort_unstable();
    zipf_seeds.dedup();
    let ladder_subs: Vec<Subgraph> = zipf_seeds
        .iter()
        .map(|&s| {
            let ball = bfs_ball(&ladder_g, s, L1 as u32).expect("bfs");
            Subgraph::extract(&ladder_g, &ball).expect("extract")
        })
        .collect();
    let ladder_nodes: f64 = ladder_subs
        .iter()
        .map(|s| s.num_nodes() as f64)
        .sum::<f64>()
        / ladder_subs.len().max(1) as f64;
    println!(
        "ladder working set: {} Zipf balls, avg {ladder_nodes:.0} nodes each \
         (scale-free |V|=60k, m=8, depth {L1})",
        ladder_subs.len()
    );
    // The cached ladder executes over the reduced-width resident form;
    // every ball here fits the u16 local-id space (<= 65 536 nodes).
    let compacts: Vec<CompactBall> = ladder_subs
        .iter()
        .map(|sub| CompactBall::from_subgraph(sub).expect("compact ball"))
        .collect();
    let config = DiffusionConfig::new(alpha, L1).expect("config");
    let rounds = 8usize;
    let diffusions = (rounds * ladder_subs.len()) as f64;

    let mut out = DiffusionScratch::new();
    // Ball-major timing: each ball gets its rounds back-to-back, the
    // way Zipf traffic re-diffuses a hot resident ball (the shared
    // cache above serves ~90 % of lookups without a BFS). The first,
    // untimed visit per ball sizes scratch and faults the adjacency in.
    // Best-of-3 trials filters scheduler noise out of the floor check.
    let mut time_rung = |run: &mut dyn FnMut(usize, &mut DiffusionScratch)| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut total = 0.0f64;
            for i in 0..ladder_subs.len() {
                run(i, &mut out);
                let started = Instant::now();
                for _ in 0..rounds {
                    run(i, &mut out);
                }
                total += started.elapsed().as_secs_f64();
            }
            best = best.min(total * 1e9 / diffusions);
        }
        best
    };
    // The pre-ladder baseline: the legacy frontier-sparse f64 kernel on
    // the full Subgraph (what uncached Exact64 executes).
    let sparse_ns = time_rung(&mut |i, out| {
        let sub = &ladder_subs[i];
        diffuse_into(sub, &[(sub.seed_local(), 1.0)], config, out).expect("diffusion");
    });
    // The ladder rungs, all over the compact resident form, differing
    // only in score width: this isolates the arithmetic's cost.
    let mut qs64 = QuantScratch::<f64>::default();
    let f64_ns = time_rung(&mut |i, out| {
        let b = &compacts[i];
        diffuse_quantized::<f64, _>(b, &[(b.seed_local(), 1.0)], config, (), &mut qs64, out)
            .expect("diffusion");
    });
    let mut qs32 = QuantScratch::<f32>::default();
    let f32_ns = time_rung(&mut |i, out| {
        let b = &compacts[i];
        diffuse_quantized::<f32, _>(b, &[(b.seed_local(), 1.0)], config, (), &mut qs32, out)
            .expect("diffusion");
    });
    let mut qsfx = QuantScratch::<Qu32>::default();
    let q16_ns = time_rung(&mut |i, out| {
        let b = &compacts[i];
        diffuse_quantized::<Qu32, _>(
            b,
            &[(b.seed_local(), 1.0)],
            config,
            QCtx::new(16),
            &mut qsfx,
            out,
        )
        .expect("diffusion");
    });
    // Four rows: `exact/sparse` is the pre-ladder pipeline (Exact64 on
    // a full-store ball takes the legacy frontier-sparse f64 kernel);
    // `exact/compact` is the dense f64 rung the cached ladder executes,
    // isolating the width effect from the kernel/storage change; `f32`
    // and `q16` are the narrow rungs the router degrades to.
    let ladder_ns = [
        ("exact/sparse", sparse_ns),
        ("exact/compact", f64_ns),
        ("f32", f32_ns),
        ("q16", q16_ns),
    ];
    let mut ladder_table = TextTable::new(vec!["rung", "ns/diffusion", "speedup vs exact"]);
    for (label, ns) in ladder_ns {
        ladder_table.row(vec![
            label.into(),
            format!("{ns:.0}"),
            format!("{:.2}x", sparse_ns / ns),
        ]);
    }
    ladder_table.print();
    let best_speedup = (sparse_ns / f32_ns).max(sparse_ns / q16_ns);
    println!(
        "best narrow rung: {:.2}x the exact-f64 pipeline over {} Zipf balls x {} rounds \
         (the router's actual trade: full-store sparse f64 vs compact-store narrow scores)",
        best_speedup,
        ladder_subs.len(),
        rounds,
    );
    // Wall-clock claims only hold with optimizations; debug builds run
    // the section for coverage without enforcing the floors.
    #[cfg(not(debug_assertions))]
    {
        assert!(
            best_speedup >= 1.2,
            "precision ladder speedup regressed: best narrow rung is {best_speedup:.2}x \
             (need >= 1.2x vs the exact-f64 pipeline)"
        );
        // The width effect itself must not regress either: the best
        // narrow rung may not run slower than the dense f64 rung on the
        // same compact balls (2 % tolerance for scheduler noise).
        let narrow_ns = f32_ns.min(q16_ns);
        assert!(
            narrow_ns <= f64_ns * 1.02,
            "narrow scores regressed vs the f64 rung on the same balls: \
             {narrow_ns:.0} ns vs {f64_ns:.0} ns"
        );
    }

    // Claim 2: resident density under the byte budget of the memory
    // pressure section, full vs compact ball store.
    let run_store = |store: BallStore| -> usize {
        let cache = Arc::new(
            ConcurrentSubgraphCache::with_budget(CacheBudget::bytes(byte_budget))
                .with_ball_store(store),
        );
        let backend = Meloppr::new(g, staged.clone())
            .expect("backend")
            .with_shared_cache(Arc::clone(&cache));
        executor.run(&backend, &reqs).expect("store batch");
        cache.resident_entries()
    };
    let full_resident = run_store(BallStore::Full);
    let compact_resident = run_store(BallStore::Compact);
    let density = compact_resident as f64 / full_resident.max(1) as f64;
    println!(
        "ball store density under {}: full {} residents, compact {} residents ({:.2}x)",
        format_bytes(byte_budget),
        full_resident,
        compact_resident,
        density,
    );
    assert!(
        density >= 1.5,
        "compact ball store regressed: {compact_resident} residents vs {full_resident} \
         full ({density:.2}x, need >= 1.5x under the same byte budget)"
    );

    // Claim 3: end-to-end quantized rankings against the exact-f64
    // staged baseline, top-200.
    let ppr200 = PprParams::new(alpha, 6, 200).expect("params");
    let staged200 = MelopprParams {
        ppr: ppr200,
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    let floor_backend = Meloppr::new(g, staged200).expect("backend");
    let floor_seeds = sample_hub_seeds(g, 3);
    let mut floors = [
        ("f32", PrecisionClass::Fast32, 1.0f64),
        ("q16", PrecisionClass::Fixed(16), 1.0f64),
    ];
    for &seed in &floor_seeds {
        let exact = floor_backend
            .query(&QueryRequest::new(seed))
            .expect("exact query")
            .ranking;
        for (_, class, worst) in floors.iter_mut() {
            let outcome = floor_backend
                .query(&QueryRequest::new(seed).with_precision(*class))
                .expect("quantized query");
            assert_eq!(outcome.stats.precision_class, *class);
            let p = precision_at_k(&outcome.ranking, &exact, 200);
            *worst = worst.min(p);
        }
    }
    for (label, _, worst) in &floors {
        println!(
            "precision@200 floor ({label} vs exact, {} hub seeds): {worst:.4}",
            floor_seeds.len()
        );
        assert!(
            *worst >= 0.95,
            "{label} rung dropped below the precision floor: {worst:.4} < 0.95"
        );
    }

    // Machine-readable mirror of everything above.
    let json = render_json(
        &corpus.label(),
        g.num_nodes(),
        g.num_edges(),
        cpu_ms,
        &fpga_rows,
        &ladder_ns,
        byte_budget,
        full_resident,
        compact_resident,
        &floors,
    );
    const REPORT: &str = "BENCH_fig5.json";
    std::fs::write(REPORT, json).expect("write BENCH_fig5.json");
    println!();
    println!("machine-readable report written to {REPORT}");

    // Beyond-RAM scale: the persisted ball index as a cold tier below a
    // byte-budgeted cache capped at ¼ of the summed ball bytes. The same
    // Zipf traffic is served twice under the *same* budget — RAM-only
    // (misses re-extract by BFS) and tiered (misses read the index) —
    // and the win is counted in deterministic BFS extractions. A
    // latency probe then places the three serving paths: a cold hit
    // must sit strictly between a RAM hit and a BFS miss.
    println!();
    println!("== beyond-RAM: persisted ball index under a quarter-budget cache, Zipf traffic ==");
    let tiered_params = MelopprParams {
        ppr: PprParams::new(alpha, 6, 20).expect("params"),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    let index_path =
        std::env::temp_dir().join(format!("meloppr-fig5-{}.ballidx", std::process::id()));
    let build_started = Instant::now();
    let report = build_index(g, L1 as u32, &index_path).expect("build ball index");
    let build_ms = build_started.elapsed().as_secs_f64() * 1e3;
    let quarter_budget = (report.ball_bytes / 4).max(1);
    println!(
        "index: {} balls ({} skipped) at depth {L1}, {} ball bytes, {} on disk, \
         built in {build_ms:.0} ms",
        report.nodes_indexed,
        report.nodes_skipped,
        format_bytes(report.ball_bytes),
        format_bytes(report.file_bytes as usize),
    );
    println!(
        "cache byte budget: {} (¼ of the summed ball bytes)",
        format_bytes(quarter_budget)
    );

    let mix = sample_zipf_queries(g, queries, 64, 1.0, 48);
    let reqs: Vec<QueryRequest> = mix.iter().map(|&s| QueryRequest::new(s)).collect();

    let ram_cache = Arc::new(ConcurrentSubgraphCache::with_budget(CacheBudget::bytes(
        quarter_budget,
    )));
    let ram_backend = Meloppr::new(g, tiered_params.clone())
        .expect("backend")
        .with_shared_cache(Arc::clone(&ram_cache));
    let ram_batch = executor.run(&ram_backend, &reqs).expect("ram-only batch");
    let ram_delta = ram_batch.stats.cache.expect("cache stats");

    let index = Arc::new(BallIndex::open(&index_path).expect("open ball index"));
    let tiered_cache = Arc::new(
        ConcurrentSubgraphCache::with_budget(CacheBudget::bytes(quarter_budget))
            .with_cold_tier(Arc::clone(&index)),
    );
    let tiered_backend = Meloppr::new(g, tiered_params)
        .expect("backend")
        .with_shared_cache(Arc::clone(&tiered_cache));
    let tiered_batch = executor.run(&tiered_backend, &reqs).expect("tiered batch");
    let tiered_delta = tiered_batch.stats.cache.expect("cache stats");
    assert_eq!(
        ram_batch
            .outcomes
            .iter()
            .map(|o| &o.ranking)
            .collect::<Vec<_>>(),
        tiered_batch
            .outcomes
            .iter()
            .map(|o| &o.ranking)
            .collect::<Vec<_>>(),
        "the cold tier must not change rankings"
    );

    let mut tier_table = TextTable::new(vec![
        "store",
        "bfs extractions",
        "cold hits",
        "cold read",
        "fallbacks",
        "hit rate",
    ]);
    tier_table.row(vec![
        "RAM-only".into(),
        ram_delta.extractions.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{:.0}%", ram_delta.hit_rate() * 100.0),
    ]);
    tier_table.row(vec![
        "tiered".into(),
        tiered_delta.extractions.to_string(),
        tiered_delta.cold_hits.to_string(),
        format_bytes(tiered_delta.cold_bytes_read as usize),
        tiered_delta.cold_fallbacks.to_string(),
        format!("{:.0}%", tiered_delta.hit_rate() * 100.0),
    ]);
    tier_table.print();
    let extraction_drop = ram_delta.extractions as f64 / tiered_delta.extractions.max(1) as f64;
    println!(
        "warm-traffic BFS extractions: {} RAM-only vs {} tiered ({extraction_drop:.1}x fewer)",
        ram_delta.extractions, tiered_delta.extractions,
    );
    // Deterministic work counters, not wall clock: enforced in every
    // build profile.
    assert!(
        ram_delta.extractions >= 4 * tiered_delta.extractions.max(1),
        "tiered store saved too little: {} RAM-only extractions vs {} tiered \
         (need >= 4x fewer)",
        ram_delta.extractions,
        tiered_delta.extractions,
    );

    // Latency probe: median ns per serving path over the hot seeds.
    // RAM hit — a resident ball through the cache's lookup; cold hit —
    // one positioned read + decode + inflation (what a tiered miss
    // costs); BFS miss — live extraction from the full graph.
    let probe_nodes: Vec<u32> = mix.iter().take(16).copied().collect();
    let reps = 32usize;
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let mut scratch = meloppr_graph::ExtractScratch::default();
    let mut cold_buf = Vec::new();
    let probe_cache = ConcurrentSubgraphCache::new(probe_nodes.len() * 2);
    let probe_consumer = CacheConsumer::new(64);
    for &node in &probe_nodes {
        probe_cache
            .warm_with(g, node, L1 as u32, &mut scratch)
            .expect("warm probe ball");
    }
    let mut ram_ns = Vec::new();
    let mut cold_ns = Vec::new();
    let mut bfs_ns = Vec::new();
    for _ in 0..reps {
        for &node in &probe_nodes {
            let started = Instant::now();
            probe_cache
                .get_ball_with_as(
                    g,
                    node,
                    L1 as u32,
                    &mut scratch,
                    &mut cold_buf,
                    &probe_consumer,
                )
                .expect("ram hit");
            ram_ns.push(started.elapsed().as_secs_f64() * 1e9);

            let started = Instant::now();
            let ball = index
                .read_ball(node, L1 as u32, &mut cold_buf)
                .expect("cold read")
                .expect("indexed ball");
            let sub = ball.to_subgraph().expect("inflate");
            cold_ns.push(started.elapsed().as_secs_f64() * 1e9);
            std::hint::black_box(sub);

            let started = Instant::now();
            let ball = bfs_ball(g, node, L1 as u32).expect("bfs");
            let sub = Subgraph::extract(g, &ball).expect("extract");
            bfs_ns.push(started.elapsed().as_secs_f64() * 1e9);
            std::hint::black_box(sub);
        }
    }
    let (ram_hit_ns, cold_hit_ns, bfs_miss_ns) = (median(ram_ns), median(cold_ns), median(bfs_ns));
    println!(
        "serving latency (median over {} probes x {reps}): RAM hit {ram_hit_ns:.0} ns, \
         cold hit {cold_hit_ns:.0} ns, BFS miss {bfs_miss_ns:.0} ns",
        probe_nodes.len()
    );
    // Wall-clock ordering only holds with optimizations; debug builds
    // run the probe for coverage without enforcing it.
    #[cfg(not(debug_assertions))]
    assert!(
        ram_hit_ns < cold_hit_ns && cold_hit_ns < bfs_miss_ns,
        "cold-hit latency must sit strictly between a RAM hit and a BFS miss: \
         {ram_hit_ns:.0} / {cold_hit_ns:.0} / {bfs_miss_ns:.0} ns"
    );

    let tiered_json = render_tiered_json(
        &corpus.label(),
        g.num_nodes(),
        g.num_edges(),
        &report,
        build_ms,
        quarter_budget,
        reqs.len(),
        (ram_delta.extractions, ram_delta.hit_rate()),
        &tiered_delta,
        (ram_hit_ns, cold_hit_ns, bfs_miss_ns),
    );
    const TIERED_REPORT: &str = "BENCH_tiered.json";
    std::fs::write(TIERED_REPORT, tiered_json).expect("write BENCH_tiered.json");
    println!("machine-readable report written to {TIERED_REPORT}");
    let _ = std::fs::remove_file(&index_path);
}

/// Renders the figure's machine-readable report. Hand-rolled writer —
/// the workspace deliberately carries no serde; every value is a plain
/// number or an ASCII label, so escaping is a non-issue.
#[allow(clippy::too_many_arguments)]
fn render_json(
    graph_label: &str,
    nodes: usize,
    edges: usize,
    cpu_ms: f64,
    fpga_rows: &[(usize, f64, f64, f64, f64)],
    ladder_ns: &[(&str, f64)],
    byte_budget: usize,
    full_resident: usize,
    compact_resident: usize,
    floors: &[(&str, PrecisionClass, f64)],
) -> String {
    // Speedups are relative to the pre-ladder exact pipeline (sparse
    // f64 over full-store balls — what Exact64 executes).
    let exact_ns = ladder_ns
        .iter()
        .find(|(label, _)| *label == "exact/sparse")
        .map(|&(_, ns)| ns)
        .unwrap_or(f64::NAN);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"fig5_scalability\",\n");
    out.push_str(&format!(
        "  \"graph\": {{\"label\": \"{graph_label}\", \"nodes\": {nodes}, \"edges\": {edges}}},\n"
    ));
    out.push_str(&format!("  \"cpu_diffusion_ms\": {cpu_ms:.6},\n"));
    out.push_str("  \"fpga_scalability\": [\n");
    for (i, (p, total, sched, diff, dm)) in fpga_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"parallelism\": {p}, \"total_ms\": {total:.6}, \"scheduling_ms\": \
             {sched:.6}, \"diffusion_ms\": {diff:.6}, \"data_movement_ms\": {dm:.6}}}{}\n",
            if i + 1 < fpga_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"precision_ladder\": {\n");
    out.push_str("    \"diffusion\": [\n");
    for (i, (label, ns)) in ladder_ns.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"class\": \"{label}\", \"ns_per_diffusion\": {ns:.1}, \
             \"speedup_vs_exact\": {:.4}}}{}\n",
            exact_ns / ns,
            if i + 1 < ladder_ns.len() { "," } else { "" }
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"cache_density\": {{\"byte_budget\": {byte_budget}, \"full_resident_balls\": \
         {full_resident}, \"compact_resident_balls\": {compact_resident}, \"ratio\": {:.4}}},\n",
        compact_resident as f64 / full_resident.max(1) as f64
    ));
    out.push_str("    \"precision_at_200_floors\": [\n");
    for (i, (label, _, worst)) in floors.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"class\": \"{label}\", \"min_precision_at_200\": {worst:.6}}}{}\n",
            if i + 1 < floors.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Renders the beyond-RAM section's machine-readable report
/// (`BENCH_tiered.json`). Same hand-rolled writer as [`render_json`].
#[allow(clippy::too_many_arguments)]
fn render_tiered_json(
    graph_label: &str,
    nodes: usize,
    edges: usize,
    report: &IndexBuildReport,
    build_ms: f64,
    byte_budget: usize,
    queries: usize,
    ram_only: (u64, f64),
    tiered: &ConsumerStats,
    latency_ns: (f64, f64, f64),
) -> String {
    let (ram_extractions, ram_hit_rate) = ram_only;
    let (ram_hit_ns, cold_hit_ns, bfs_miss_ns) = latency_ns;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"fig5_tiered_ball_store\",\n");
    out.push_str(&format!(
        "  \"graph\": {{\"label\": \"{graph_label}\", \"nodes\": {nodes}, \"edges\": {edges}}},\n"
    ));
    out.push_str(&format!(
        "  \"index\": {{\"depth\": {L1}, \"nodes_indexed\": {}, \"nodes_skipped\": {}, \
         \"ball_bytes\": {}, \"file_bytes\": {}, \"build_ms\": {build_ms:.3}}},\n",
        report.nodes_indexed, report.nodes_skipped, report.ball_bytes, report.file_bytes,
    ));
    out.push_str(&format!(
        "  \"cache_byte_budget\": {byte_budget},\n  \"zipf_queries\": {queries},\n"
    ));
    out.push_str(&format!(
        "  \"ram_only\": {{\"bfs_extractions\": {ram_extractions}, \"hit_rate\": \
         {ram_hit_rate:.4}}},\n"
    ));
    out.push_str(&format!(
        "  \"tiered\": {{\"bfs_extractions\": {}, \"cold_hits\": {}, \"cold_bytes_read\": {}, \
         \"cold_fallbacks\": {}, \"hit_rate\": {:.4}}},\n",
        tiered.extractions,
        tiered.cold_hits,
        tiered.cold_bytes_read,
        tiered.cold_fallbacks,
        tiered.hit_rate(),
    ));
    out.push_str(&format!(
        "  \"extraction_drop\": {:.4},\n",
        ram_extractions as f64 / tiered.extractions.max(1) as f64
    ));
    out.push_str(&format!(
        "  \"latency_ns\": {{\"ram_hit\": {ram_hit_ns:.1}, \"cold_hit\": {cold_hit_ns:.1}, \
         \"bfs_miss\": {bfs_miss_ns:.1}}}\n"
    ));
    out.push_str("}\n");
    out
}
