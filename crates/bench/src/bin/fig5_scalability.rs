//! **Experiment E1 — Fig. 5**: FPGA scalability with parallelism
//! `P ∈ {1, 2, 4, 8, 16}` on G1 (citeseer), 100 MHz.
//!
//! Fig. 5 benchmarks a single *graph diffusion operation* (stage-one, on
//! the depth-`l1` ball): the CPU bar is the NetworkX-class software
//! diffusion; the FPGA bars split into scheduling stalls, ideal diffusion
//! cycles, and host↔device data movement. Paper shapes: > 10× latency
//! reduction scaling P 1 → 16; scheduling < 20 % at P = 2 and < 40 %
//! beyond.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin fig5_scalability
//! [--full] [--seeds N] [--scale F]`

use std::sync::Arc;

use meloppr_bench::table::TextTable;
use meloppr_bench::workload::{sample_hub_seeds, sample_zipf_queries, sample_zipf_queries_offset};
use meloppr_bench::{measure_batch_throughput, CorpusGraph, CpuCostModel, ExperimentScale};
use meloppr_core::backend::{BatchExecutor, Meloppr, QueryRequest};
use meloppr_core::diffusion::{diffuse_from_seed, DiffusionConfig};
use meloppr_core::{format_bytes, CacheBudget, ConcurrentSubgraphCache};
use meloppr_core::{MelopprParams, PprBackend, PprParams, SelectionStrategy};
use meloppr_fpga::{
    cycles_to_ns, AcceleratorConfig, CycleBreakdown, FixedPointFormat, FpgaAccelerator,
};
use meloppr_graph::generators::corpus::PaperGraph;
use meloppr_graph::{bfs_ball, GraphView, Subgraph};

const L1: usize = 3; // stage-one depth (L = 6 = 3 + 3)

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 5);
    let paper = PaperGraph::G1Citeseer;
    let corpus = CorpusGraph::generate(paper, scale.scale_for(paper), 42);
    let g = &corpus.graph;
    // Hub seeds: the scalability study needs diffusion-bound sub-graphs.
    let seeds = sample_hub_seeds(g, scale.seeds);
    let cost = CpuCostModel::default();

    println!("== Fig. 5: FPGA scalability for one graph diffusion (stage one, l1 = 3) ==");
    println!(
        "graph: {}  |V|={} |E|={}  hub seeds: {:?}\n",
        corpus.label(),
        g.num_nodes(),
        g.num_edges(),
        seeds
    );

    // Extract stage-one balls once; they are shared by every P.
    let subs: Vec<Subgraph> = seeds
        .iter()
        .map(|&s| {
            let ball = bfs_ball(g, s, L1 as u32).expect("bfs");
            Subgraph::extract(g, &ball).expect("extract")
        })
        .collect();
    let avg_nodes: f64 =
        subs.iter().map(|s| s.num_nodes() as f64).sum::<f64>() / subs.len().max(1) as f64;
    let avg_edges: f64 =
        subs.iter().map(|s| s.num_edges() as f64).sum::<f64>() / subs.len().max(1) as f64;
    println!("stage-one balls: avg {avg_nodes:.0} nodes, {avg_edges:.0} edges");

    // CPU bar: NetworkX-class diffusion cost over the same balls.
    let alpha = 0.85;
    let config = DiffusionConfig::new(alpha, L1).expect("config");
    let mut cpu_ns = 0.0;
    for sub in &subs {
        let out = diffuse_from_seed(sub, sub.seed_local(), config).expect("diffusion");
        cpu_ns += out.work.edge_updates as f64 * cost.ns_per_diffusion_edge
            + sub.num_nodes() as f64 * L1 as f64 * cost.ns_per_node_touch;
    }
    let cpu_ms = cpu_ns / subs.len().max(1) as f64 / 1e6;
    println!("CPU (modelled, NetworkX-class): {cpu_ms:.3} ms  (paper bar: ~9 ms)\n");

    let mut table = TextTable::new(vec![
        "P",
        "total ms",
        "sched ms",
        "diff ms",
        "datamove ms",
        "sched %",
        "speedup vs P=1",
        "diff speedup",
        "speedup vs CPU",
    ]);
    let mut p1_total: Option<f64> = None;
    let mut p1_diff: Option<f64> = None;
    for p in [1usize, 2, 4, 8, 16] {
        let accel = FpgaAccelerator::new(AcceleratorConfig {
            parallelism: p,
            ..AcceleratorConfig::default()
        })
        .expect("accel");
        let clock = accel.config().clock_mhz;
        let mut cycles = CycleBreakdown::default();
        for sub in &subs {
            let fmt =
                FixedPointFormat::for_graph(g, alpha, 10, Default::default()).expect("format");
            cycles.data_movement += accel.stream_in_cycles(sub);
            let result = accel
                .run_diffusion(sub, fmt.max_value(), L1, &fmt)
                .expect("fpga diffusion");
            cycles.diffusion += result.cycles.diffusion;
            cycles.scheduling += result.cycles.scheduling;
        }
        let n = subs.len().max(1) as f64;
        let total_ms = cycles_to_ns(cycles.total(), clock) / n / 1e6;
        let diff_ms = cycles_to_ns(cycles.diffusion, clock) / n / 1e6;
        let p1 = *p1_total.get_or_insert(total_ms);
        let p1d = *p1_diff.get_or_insert(diff_ms);
        let fpga_work = cycles.diffusion + cycles.scheduling;
        let sched_pct = if fpga_work > 0 {
            cycles.scheduling as f64 / fpga_work as f64 * 100.0
        } else {
            0.0
        };
        table.row(vec![
            p.to_string(),
            format!("{total_ms:.4}"),
            format!("{:.4}", cycles_to_ns(cycles.scheduling, clock) / n / 1e6),
            format!("{:.4}", cycles_to_ns(cycles.diffusion, clock) / n / 1e6),
            format!("{:.4}", cycles_to_ns(cycles.data_movement, clock) / n / 1e6),
            format!("{sched_pct:.1}%"),
            format!("{:.2}x", p1 / total_ms),
            format!("{:.2}x", p1d / diff_ms),
            format!("{:.1}x", cpu_ms / total_ms),
        ]);
    }
    table.print();
    println!();
    println!("paper reference: >10x diffusion-latency reduction P=1 -> P=16;");
    println!("scheduling overhead < 20% at P=2, < 40% for P>2 (of FPGA-side work).");

    // Serving-side scalability: the batched executor (one workspace per
    // worker) over full staged queries on the same hub seeds.
    println!();
    println!("== batched serving: query_batch workers vs sequential query ==");
    let staged = MelopprParams {
        ppr: PprParams::new(alpha, 6, 20).expect("params"),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    let backend = Meloppr::new(g, staged).expect("backend");
    let mut batch_table = TextTable::new(vec![
        "workers",
        "sequential ms",
        "batch ms",
        "speedup",
        "batch qps",
    ]);
    for workers in [1usize, 2, 4, 8] {
        let t = measure_batch_throughput(&backend, &seeds, workers);
        batch_table.row(vec![
            workers.to_string(),
            format!("{:.2}", t.sequential_ms),
            format!("{:.2}", t.batch_ms),
            format!("{:.2}x", t.speedup),
            format!("{:.0}", t.batch_qps),
        ]);
    }
    batch_table.print();
    println!(
        "(wall-clock speedup needs real cores; this host reports {})",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    // Shared-cache serving under skewed (Zipf) traffic: the same staged
    // backend with and without a ConcurrentSubgraphCache shared by all
    // batch workers. The win is counted in deterministic work units (ball
    // extractions and BFS edge scans), not wall clock, so it shows even
    // on a 1-core host.
    println!();
    println!("== shared sub-graph cache: Zipf(1.0) traffic, extractions vs queries ==");
    let staged = MelopprParams {
        ppr: PprParams::new(alpha, 6, 20).expect("params"),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    let queries = 256.max(scale.seeds * 16);
    let mix = sample_zipf_queries(g, queries, 64, 1.0, 42);
    let reqs: Vec<QueryRequest> = mix.iter().map(|&s| QueryRequest::new(s)).collect();
    let executor = BatchExecutor::new(4).expect("executor");

    let uncached = Meloppr::new(g, staged.clone()).expect("backend");
    let cold = executor.run(&uncached, &reqs).expect("uncached batch");

    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let cached_backend = Meloppr::new(g, staged)
        .expect("backend")
        .with_shared_cache(Arc::clone(&cache));
    let warm = executor.run(&cached_backend, &reqs).expect("cached batch");
    assert_eq!(
        cold.outcomes.iter().map(|o| &o.ranking).collect::<Vec<_>>(),
        warm.outcomes.iter().map(|o| &o.ranking).collect::<Vec<_>>(),
        "shared cache must not change rankings"
    );

    let cache_stats = warm.stats.cache.expect("cache stats (consumer-attributed)");
    let mut cache_table = TextTable::new(vec![
        "mode",
        "queries",
        "ball extractions",
        "bfs edges",
        "wall ms",
    ]);
    cache_table.row(vec![
        "uncached".into(),
        cold.stats.queries.to_string(),
        cold.stats.total_diffusions.to_string(),
        cold.stats.bfs_edges_scanned.to_string(),
        format!("{:.2}", cold.stats.wall_clock.as_secs_f64() * 1e3),
    ]);
    cache_table.row(vec![
        "shared cache".into(),
        warm.stats.queries.to_string(),
        cache_stats.extractions.to_string(),
        warm.stats.bfs_edges_scanned.to_string(),
        format!("{:.2}", warm.stats.wall_clock.as_secs_f64() * 1e3),
    ]);
    cache_table.print();
    println!(
        "cache: {} ball lookups, {:.0}% served without BFS, {} singleflight shares, \
         {:.1}x fewer extractions than lookups",
        cache_stats.lookups(),
        cache_stats.hit_rate() * 100.0,
        cache_stats.shared,
        cache_stats.lookups() as f64 / cache_stats.extractions.max(1) as f64,
    );

    // Traffic shift: yesterday's hot seed set goes cold and a disjoint
    // set heats up (Zipf seed-set rotation mid-run). The backend's
    // consumer tracks two hit rates over its own lookups: the cumulative
    // lifetime average — which stays anchored to the warm phase and
    // over-promises — and the exact sliding-window rate that estimate()
    // actually discounts BFS by, which converges to the new regime
    // within one window. This is the honesty property the budget router
    // depends on: the rows below show the cumulative rate staying stale
    // while the windowed rate collapses and then re-warms.
    println!();
    println!("== traffic shift: Zipf seed-set rotation, windowed vs cumulative hit rate ==");
    let staged = MelopprParams {
        ppr: PprParams::new(alpha, 6, 20).expect("params"),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    let window = 128usize;
    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let backend = Meloppr::new(g, staged)
        .expect("backend")
        .with_cache_window(window)
        .with_shared_cache(Arc::clone(&cache));
    let consumer = backend
        .cache_consumer()
        .expect("shared mode has a consumer");
    let mut shift_table = TextTable::new(vec![
        "phase",
        "queries",
        "windowed rate",
        "cumulative rate",
        "batch extractions",
    ]);
    let mut run_phase = |label: &str, queries: usize, offset: usize, rng: u64| -> (f64, f64) {
        let mix = sample_zipf_queries_offset(g, queries, 16, offset, 1.0, rng);
        let reqs: Vec<QueryRequest> = mix.iter().map(|&s| QueryRequest::new(s)).collect();
        let batch = executor.run(&backend, &reqs).expect("shift batch");
        let delta = batch.stats.cache.expect("cache stats");
        let rates = (consumer.windowed_hit_rate(), consumer.stats().hit_rate());
        shift_table.row(vec![
            label.into(),
            reqs.len().to_string(),
            format!("{:.0}%", rates.0 * 100.0),
            format!("{:.0}%", rates.1 * 100.0),
            delta.extractions.to_string(),
        ]);
        rates
    };
    run_phase("warm-up (ranks 0..16)", 96, 0, 42);
    run_phase("steady hot", 96, 0, 43);
    // A small first post-rotation batch (~one window of lookups): the
    // moment the honest and the stale rate disagree most.
    let (windowed, cumulative) = run_phase("ROTATE (ranks 64..80)", 12, 64, 44);
    run_phase("rotated, re-warmed", 96, 64, 45);
    shift_table.print();
    println!(
        "one window after rotation: windowed {:.0}% vs cumulative {:.0}% — estimate() \
         follows the windowed rate, so routing re-learns the cache within one window",
        windowed * 100.0,
        cumulative * 100.0,
    );
    assert!(
        windowed < cumulative,
        "the windowed rate ({windowed:.2}) must converge to the cold rotated traffic \
         while the cumulative rate ({cumulative:.2}) stays stale"
    );

    // Memory pressure: the same Zipf traffic under a fixed byte budget,
    // with the budget denominated two ways. An entry-count cache treats
    // a 5-node leaf ball and a hub ball as the same slot, so sizing its
    // capacity from the average ball blows straight through the byte
    // budget once the hot set skews big; the byte-budgeted cache
    // reserves measured bytes before admitting and *cannot* exceed the
    // bound — eviction is "evict LRU until the candidate fits".
    println!();
    println!("== memory pressure: fixed byte budget, entries- vs bytes-denominated eviction ==");
    let staged = MelopprParams {
        ppr: PprParams::new(alpha, 6, 20).expect("params"),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    };
    let mix = sample_zipf_queries(g, queries, 64, 1.0, 46);
    let reqs: Vec<QueryRequest> = mix.iter().map(|&s| QueryRequest::new(s)).collect();

    // Probe the full working set with an unbounded cache.
    let unbounded = Arc::new(ConcurrentSubgraphCache::new(1 << 20));
    let probe_backend = Meloppr::new(g, staged.clone())
        .expect("backend")
        .with_shared_cache(Arc::clone(&unbounded));
    executor.run(&probe_backend, &reqs).expect("probe batch");
    let full_bytes = unbounded.resident_bytes();
    let full_entries = unbounded.resident_entries();
    let byte_budget = (full_bytes / 3).max(1);
    // The entries-denominated "equivalent": the same fraction of the
    // entry count, i.e. a capacity sized from the average ball.
    let entry_budget = (full_entries / 3).max(1);
    println!(
        "full working set: {} balls, {} — budget {} ({} avg-ball slots)",
        full_entries,
        format_bytes(full_bytes),
        format_bytes(byte_budget),
        entry_budget,
    );

    let mut pressure_table = TextTable::new(vec![
        "denomination",
        "resident",
        "vs budget",
        "balls",
        "evictions",
        "hit rate",
        "extractions",
    ]);
    let mut run_budget = |label: &str, budget: CacheBudget| -> usize {
        let cache = Arc::new(ConcurrentSubgraphCache::with_budget(budget));
        let backend = Meloppr::new(g, staged.clone())
            .expect("backend")
            .with_shared_cache(Arc::clone(&cache));
        let batch = executor.run(&backend, &reqs).expect("pressure batch");
        let delta = batch.stats.cache.expect("cache stats");
        let resident = cache.resident_bytes();
        pressure_table.row(vec![
            label.into(),
            format_bytes(resident),
            format!(
                "{:+.0}%",
                (resident as f64 / byte_budget as f64 - 1.0) * 100.0
            ),
            cache.resident_entries().to_string(),
            cache.stats().evictions.to_string(),
            format!("{:.0}%", delta.hit_rate() * 100.0),
            delta.extractions.to_string(),
        ]);
        resident
    };
    run_budget(
        "entries (avg-ball sizing)",
        CacheBudget::entries(entry_budget),
    );
    let byte_resident = run_budget("bytes (enforced)", CacheBudget::bytes(byte_budget));
    pressure_table.print();
    assert!(
        byte_resident <= byte_budget,
        "byte-budgeted cache exceeded its budget: {byte_resident} > {byte_budget}"
    );
    println!(
        "the byte-budgeted cache stays within {} by construction (reservation before \
         admission); the entry-count cache keeps whatever {} balls are hot, whatever \
         they weigh",
        format_bytes(byte_budget),
        entry_budget,
    );
}
