//! **Experiment E2 — Table I**: KC705 resource utilization under
//! parallelism `P ∈ {1, 2, 4, 8, 16}`.
//!
//! Prints the calibrated component model's LUT/BRAM estimates next to the
//! paper's published percentages. DSP usage is ~0 because divisions are
//! implemented in logic (§V-A).
//!
//! Usage: `cargo run -p meloppr-bench --bin table1_resources`

use meloppr_bench::table::TextTable;
use meloppr_fpga::ResourceModel;

/// The paper's Table I: (P, LUT %, BRAM %).
const PAPER: [(usize, f64, f64); 5] = [
    (1, 0.9, 4.8),
    (2, 3.1, 9.9),
    (4, 8.9, 19.2),
    (8, 21.8, 36.1),
    (16, 70.6, 72.8),
];

fn main() {
    let model = ResourceModel::kc705();
    println!("== Table I: FPGA resource utilization (Xilinx KC705, XC7K325T) ==\n");
    let mut table = TextTable::new(vec![
        "P",
        "LUTs",
        "LUT % (model)",
        "LUT % (paper)",
        "BRAM blocks",
        "BRAM % (model)",
        "BRAM % (paper)",
    ]);
    for &(p, lut_paper, bram_paper) in &PAPER {
        let u = model.utilization(p);
        table.row(vec![
            p.to_string(),
            u.luts.to_string(),
            format!("{:.1}%", u.lut_fraction * 100.0),
            format!("{lut_paper}%"),
            u.bram_blocks.to_string(),
            format!("{:.1}%", u.bram_fraction * 100.0),
            format!("{bram_paper}%"),
        ]);
    }
    table.print();
    println!();
    println!(
        "DSP usage: {:.2}% (divisions implemented in logic; paper: < 0.1%)",
        model.utilization(16).dsp_fraction * 100.0
    );
    println!(
        "largest parallelism that fits the device: P = {} (why the paper stops at 16)",
        model.max_parallelism()
    );
    println!(
        "per-PE BRAM budget: {} bytes ({} BRAM36 blocks)",
        model.pe_capacity_bytes(),
        model.pe_capacity_bytes() / meloppr_fpga::BRAM36_BYTES
    );
}
