//! **Experiment E4 — Fig. 6**: PPR-vector sparsity and precision vs
//! next-stage selection ratio on G1 (citeseer), G2 (cora), G3 (pubmed).
//!
//! Top plot: mean top-k precision as the selection ratio sweeps 0 %–30 %
//! (paper reference points: 1 % → 73.8 %, 2 % → 78.1 %, 3 % → 85.2 %,
//! 4.6 % → 86.7 %, 20 % → 96.1 %, 30 % → 96.9 %).
//! Bottom plot: distribution of normalized stage-one scores in log scale —
//! > 90 % of nodes near zero, < 1 % large.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin fig6_sparsity
//! [--full] [--seeds N] [--scale F]`

use meloppr_bench::table::TextTable;
use meloppr_bench::{measure_precision, sample_seeds, CorpusGraph, ExperimentScale};
use meloppr_core::diffusion::{diffuse_from_seed, DiffusionConfig};
use meloppr_core::sparsity::{log_histogram, sparsity_stats};
use meloppr_core::{MelopprParams, SelectionStrategy};
use meloppr_graph::generators::corpus::PaperGraph;

const RATIOS: [f64; 9] = [0.005, 0.01, 0.02, 0.03, 0.046, 0.05, 0.10, 0.20, 0.30];

/// Paper reference precisions (averaged over G1-G3) at matching ratios.
fn paper_reference(ratio: f64) -> Option<f64> {
    match (ratio * 1000.0).round() as u32 {
        10 => Some(0.738),
        20 => Some(0.781),
        30 => Some(0.852),
        46 => Some(0.867),
        200 => Some(0.961),
        300 => Some(0.969),
        _ => None,
    }
}

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 20);
    let mut params = MelopprParams::paper_defaults();
    params.ppr.k = 200;

    println!("== Fig. 6: precision vs selection ratio + score sparsity ==");
    println!(
        "graphs: G1, G2, G3 stand-ins; {} seeds each{} (paper: 1000 runs)\n",
        scale.seeds,
        if scale.full { ", FULL sizes" } else { "" }
    );

    let corpora: Vec<CorpusGraph> = PaperGraph::SMALL
        .into_iter()
        .enumerate()
        .map(|(i, pg)| CorpusGraph::generate(pg, scale.scale_for(pg), 42 + i as u64))
        .collect();
    let seeds: Vec<Vec<_>> = corpora
        .iter()
        .enumerate()
        .map(|(i, c)| sample_seeds(&c.graph, scale.seeds, 500 + i as u64))
        .collect();

    // Top: precision curve.
    let mut table = TextTable::new(vec!["ratio", "G1", "G2", "G3", "mean", "paper mean"]);
    for &ratio in &RATIOS {
        let p = params
            .clone()
            .with_selection(SelectionStrategy::TopFraction(ratio));
        let per_graph: Vec<f64> = corpora
            .iter()
            .zip(&seeds)
            .map(|(c, s)| measure_precision(&c.graph, s, &p))
            .collect();
        let mean = per_graph.iter().sum::<f64>() / per_graph.len() as f64;
        table.row(vec![
            format!("{:.1}%", ratio * 100.0),
            format!("{:.1}%", per_graph[0] * 100.0),
            format!("{:.1}%", per_graph[1] * 100.0),
            format!("{:.1}%", per_graph[2] * 100.0),
            format!("{:.1}%", mean * 100.0),
            paper_reference(ratio)
                .map(|p| format!("{:.1}%", p * 100.0))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table.print();

    // Bottom: normalized PPR score (πa) distribution after stage-one
    // diffusion (the paper plots the stage-one PPR scores).
    println!("\n-- normalized stage-one PPR score distribution (log10 buckets, all graphs) --");
    let mut hist_table = TextTable::new(vec!["log10(score/max)", "nodes", "fraction"]);
    let mut counts = vec![0usize; 6];
    let mut total_nonzero = 0usize;
    let (mut near_zero_acc, mut large_acc, mut graphs_counted) = (0.0, 0.0, 0usize);
    for (c, seed_list) in corpora.iter().zip(&seeds) {
        let config = DiffusionConfig::new(params.ppr.alpha, params.stages[0]).unwrap();
        for &s in seed_list.iter().take(5) {
            let out = diffuse_from_seed(&c.graph, s, config).expect("diffusion");
            let stats = sparsity_stats(&out.accumulated);
            near_zero_acc += stats.near_zero_fraction;
            large_acc += stats.large_fraction;
            graphs_counted += 1;
            for (i, b) in log_histogram(&out.accumulated, 6, 6.0).iter().enumerate() {
                counts[i] += b.count;
            }
            total_nonzero += stats.nonzero;
        }
    }
    let buckets = [
        "<= -5", "(-5,-4]", "(-4,-3]", "(-3,-2]", "(-2,-1]", "(-1,0]",
    ];
    for (label, &count) in buckets.iter().zip(&counts) {
        hist_table.row(vec![
            label.to_string(),
            count.to_string(),
            format!("{:.1}%", count as f64 / total_nonzero.max(1) as f64 * 100.0),
        ]);
    }
    hist_table.print();
    println!(
        "\nnear-zero fraction (norm < 1e-3): {:.1}%   large fraction (norm > 0.1): {:.2}%",
        near_zero_acc / graphs_counted.max(1) as f64 * 100.0,
        large_acc / graphs_counted.max(1) as f64 * 100.0
    );
    println!("paper: >90% of nodes near zero, <1% with large scores (Fig. 6 bottom).");
}
