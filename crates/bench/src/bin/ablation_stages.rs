//! **Ablation A2**: stage splits of the diffusion length `L = 6`.
//!
//! The paper fixes `l1 = l2 = 3` but derives the decomposition for
//! arbitrary splits (§IV-B "easily extended to more terms"). This ablation
//! compares splits on precision, peak task memory and diffusion counts,
//! and exercises the budget planner that picks splits automatically.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin ablation_stages
//! [--seeds N] [--scale F]`

use meloppr_bench::table::{fmt_mb, TextTable};
use meloppr_bench::{sample_seeds, CorpusGraph, ExperimentScale};
use meloppr_core::{
    exact_top_k, mean_precision, plan_stages, precision_at_k, MelopprEngine, MelopprParams,
    SelectionStrategy,
};
use meloppr_graph::generators::corpus::PaperGraph;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 8);
    let paper = PaperGraph::G3Pubmed;
    let corpus = CorpusGraph::generate(paper, scale.scale_for(paper).min(0.25), 42);
    let g = &corpus.graph;
    let seeds = sample_seeds(g, scale.seeds, 33);
    let mut params = MelopprParams::paper_defaults();
    params.ppr.k = 200;
    params.selection = SelectionStrategy::TopFraction(0.05);

    println!("== Ablation A2: stage splits of L = 6 ==");
    println!(
        "graph: {}  seeds: {}  selection: 5%\n",
        corpus.label(),
        seeds.len()
    );

    let splits: Vec<Vec<usize>> = vec![
        vec![6],
        vec![3, 3],
        vec![2, 4],
        vec![4, 2],
        vec![2, 2, 2],
        vec![1, 1, 1, 1, 1, 1],
    ];
    let mut table = TextTable::new(vec![
        "stages",
        "precision",
        "peak task MB",
        "diffusions",
        "bfs edges",
    ]);
    for stages in &splits {
        let mut p = params.clone();
        p.stages = stages.clone();
        let engine = MelopprEngine::new(g, p.clone()).expect("engine");
        let mut precisions = Vec::new();
        let (mut peak, mut diffusions, mut bfs) = (0usize, 0usize, 0usize);
        for &s in &seeds {
            let outcome = engine.query(s).expect("query");
            let exact = exact_top_k(g, s, &p.ppr).expect("exact");
            precisions.push(precision_at_k(&outcome.ranking, &exact, p.ppr.k));
            peak = peak.max(outcome.stats.peak_task_memory.total());
            diffusions += outcome.stats.total_diffusions;
            bfs += outcome.stats.bfs_edges_scanned;
        }
        let n = seeds.len().max(1);
        table.row(vec![
            format!("{stages:?}"),
            format!("{:.1}%", mean_precision(&precisions).unwrap_or(0.0) * 100.0),
            fmt_mb(peak),
            format!("{:.1}", diffusions as f64 / n as f64),
            format!("{:.0}", bfs as f64 / n as f64),
        ]);
    }
    table.print();

    println!("\n-- budget planner (meloppr-core::planner) --");
    let probe = &seeds[..seeds.len().min(3)];
    let single = plan_stages(g, &params.ppr, usize::MAX, probe).expect("plan");
    println!(
        "unbounded budget -> stages {:?} (peak {} MB)",
        single.stages,
        fmt_mb(single.expected_peak_bytes)
    );
    for divisor in [4usize, 16, 64] {
        let budget = single.expected_peak_bytes / divisor;
        let plan = plan_stages(g, &params.ppr, budget, probe).expect("plan");
        println!(
            "budget {} MB -> stages {:?} (peak {} MB, fits: {})",
            fmt_mb(budget),
            plan.stages,
            fmt_mb(plan.expected_peak_bytes),
            plan.fits_budget
        );
    }
    println!("\nexpected shape: single-stage is exact but needs the depth-6 ball;");
    println!("deeper splits shrink memory at a precision/diffusion-count cost.");
}
