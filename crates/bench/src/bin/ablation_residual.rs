//! **Ablation A1**: residual policy for unexpanded next-stage nodes.
//!
//! Exact Eq. 8 subtracts `α^{l1}·Sʳ` everywhere and re-adds expanded
//! diffusions. When a node is *not* expanded, MeLoPPR can either keep its
//! residual mass in place (`KeepUnexpanded`, the zeroth-order
//! approximation — our default) or drop it (`DropUnexpanded`, literal
//! truncation of Eq. 8). This ablation quantifies why keeping wins,
//! especially at small selection ratios.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin ablation_residual
//! [--seeds N] [--scale F]`

use meloppr_bench::table::TextTable;
use meloppr_bench::{measure_precision, sample_seeds, CorpusGraph, ExperimentScale};
use meloppr_core::{MelopprParams, ResidualPolicy, SelectionStrategy};
use meloppr_graph::generators::corpus::PaperGraph;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 10);
    let paper = PaperGraph::G2Cora;
    let corpus = CorpusGraph::generate(paper, scale.scale_for(paper), 42);
    let seeds = sample_seeds(&corpus.graph, scale.seeds, 21);
    let mut params = MelopprParams::paper_defaults();
    params.ppr.k = 200;

    println!("== Ablation A1: residual policy (keep vs drop unexpanded mass) ==");
    println!("graph: {}  seeds: {}\n", corpus.label(), seeds.len());

    let mut table = TextTable::new(vec![
        "ratio",
        "keep",
        "drop",
        "scaled-keep (default)",
        "keep - drop",
    ]);
    for ratio in [0.0, 0.01, 0.02, 0.05, 0.1, 0.3, 1.0] {
        let measure = |policy: ResidualPolicy| {
            measure_precision(
                &corpus.graph,
                &seeds,
                &params
                    .clone()
                    .with_selection(SelectionStrategy::TopFraction(ratio))
                    .with_residual_policy(policy),
            )
        };
        let keep = measure(ResidualPolicy::KeepUnexpanded);
        let drop = measure(ResidualPolicy::DropUnexpanded);
        let scaled = measure(ResidualPolicy::ScaledKeep);
        table.row(vec![
            format!("{:.0}%", ratio * 100.0),
            format!("{:.1}%", keep * 100.0),
            format!("{:.1}%", drop * 100.0),
            format!("{:.1}%", scaled * 100.0),
            format!("{:+.1} pts", (keep - drop) * 100.0),
        ]);
    }
    table.print();
    println!();
    println!("expected shape: all identical at 100% selection (exact Eq. 8);");
    println!("keep dominates at small ratios (terminating walks in place beats deleting");
    println!("them); drop catches up once most residual mass is expanded; scaled-keep");
    println!("(retain the (1-alpha) self-retention share) interpolates between the two.");
}
