//! **Experiment E7 — §V-B study**: precision loss of the bounded global
//! score table vs its capacity factor `c`.
//!
//! The paper: "when c > 8, the precision loss is less than 0.2 %; and when
//! c < 4, the precision loss is larger than 3 %", settling on `c = 10`.
//! This sweeps `c` on G1/G2 stand-ins against unbounded aggregation.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin study_global_table
//! [--seeds N] [--scale F]`

use meloppr_bench::table::TextTable;
use meloppr_bench::{sample_seeds, CorpusGraph, ExperimentScale};
use meloppr_core::{
    mean_precision, precision_at_k, MelopprEngine, MelopprParams, SelectionStrategy,
};
use meloppr_graph::generators::corpus::PaperGraph;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 10);
    let mut params = MelopprParams::paper_defaults();
    params.ppr.k = 200;
    params.selection = SelectionStrategy::TopFraction(0.1);

    println!("== §V-B study: bounded global score table (capacity c*k) ==");
    println!("selection: 10%, k = 200; reference: unbounded aggregation\n");

    let mut table = TextTable::new(vec![
        "c",
        "capacity",
        "match",
        "loss",
        "evictions/query",
        "paper bound",
    ]);
    let corpora: Vec<CorpusGraph> = [PaperGraph::G1Citeseer, PaperGraph::G2Cora]
        .into_iter()
        .enumerate()
        .map(|(i, pg)| CorpusGraph::generate(pg, scale.scale_for(pg), 42 + i as u64))
        .collect();

    // Unbounded reference rankings per graph/seed.
    let mut references = Vec::new();
    for (i, corpus) in corpora.iter().enumerate() {
        let seeds = sample_seeds(&corpus.graph, scale.seeds, 60 + i as u64);
        let engine = MelopprEngine::new(&corpus.graph, params.clone()).expect("engine");
        let ranks: Vec<_> = seeds
            .iter()
            .map(|&s| engine.query(s).expect("query").ranking)
            .collect();
        references.push((seeds, ranks));
    }

    for c in [1usize, 2, 4, 8, 10, 16] {
        let bounded = params.clone().with_table_factor(c);
        let mut values = Vec::new();
        let mut evictions = 0usize;
        let mut queries = 0usize;
        for (corpus, (seeds, ranks)) in corpora.iter().zip(&references) {
            let engine = MelopprEngine::new(&corpus.graph, bounded.clone()).expect("engine");
            for (&s, reference) in seeds.iter().zip(ranks) {
                let outcome = engine.query(s).expect("query");
                values.push(precision_at_k(&outcome.ranking, reference, params.ppr.k));
                evictions += outcome.stats.table_evictions;
                queries += 1;
            }
        }
        let prec = mean_precision(&values).unwrap_or(0.0);
        table.row(vec![
            c.to_string(),
            (c * params.ppr.k).to_string(),
            format!("{:.2}%", prec * 100.0),
            format!("{:.2}%", (1.0 - prec) * 100.0),
            format!("{:.0}", evictions as f64 / queries.max(1) as f64),
            match c {
                c if c < 4 => "loss > 3%".into(),
                c if c > 8 => "loss < 0.2%".into(),
                _ => String::new(),
            },
        ]);
    }
    table.print();
    println!();
    println!("paper picked c = 10: negligible loss, 16 KB of BRAM, zero per-diffusion");
    println!("transfers back to the host.");
}
