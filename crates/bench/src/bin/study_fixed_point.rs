//! **Experiment E6 — §V-A study**: fixed-point precision loss vs the
//! scale constant `d` and shift amount `q`.
//!
//! The paper reports top-k precision loss < 4 % when `d` equals the
//! average degree and < 0.001 % at the maximum degree, settling on
//! `d = max_degree/2`, `q = 10`. This study sweeps both knobs on the G1
//! stand-in, comparing the hybrid (integer) engine's ranking against the
//! float engine's under identical selection.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin study_fixed_point
//! [--seeds N] [--scale F]`

use meloppr_bench::table::TextTable;
use meloppr_bench::{sample_seeds, CorpusGraph, ExperimentScale};
use meloppr_core::{
    mean_precision, precision_at_k, MelopprEngine, MelopprParams, SelectionStrategy,
};
use meloppr_fpga::{AcceleratorConfig, DegreeScale, HybridConfig, HybridMeloppr};
use meloppr_graph::generators::corpus::PaperGraph;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 10);
    let paper = PaperGraph::G1Citeseer;
    let corpus = CorpusGraph::generate(paper, scale.scale_for(paper), 42);
    let g = &corpus.graph;
    let seeds = sample_seeds(g, scale.seeds, 11);

    let mut params = MelopprParams::paper_defaults();
    params.ppr.k = 200;
    params.selection = SelectionStrategy::TopFraction(0.05);

    println!("== §V-A study: fixed-point precision loss ==");
    println!(
        "graph: {}  seeds: {}  selection: 5%  reference: float MeLoPPR engine\n",
        corpus.label(),
        seeds.len()
    );

    // Float reference rankings (identical schedule/selection semantics).
    let float_engine = MelopprEngine::new(g, params.clone()).expect("engine");
    let float_rankings: Vec<_> = seeds
        .iter()
        .map(|&s| float_engine.query(s).expect("float query").ranking)
        .collect();

    let mut table = TextTable::new(vec![
        "d policy",
        "q",
        "match vs float",
        "loss",
        "paper bound",
    ]);
    let policies = [
        ("avg degree", DegreeScale::Average, "< 4% loss"),
        ("max/2 (paper)", DegreeScale::HalfMax, "final choice"),
        ("max degree", DegreeScale::Max, "< 0.001% loss"),
    ];
    for &(name, policy, bound) in &policies {
        for q in [6u32, 8, 10, 12] {
            let config = HybridConfig {
                accel: AcceleratorConfig {
                    q,
                    degree_scale: policy,
                    ..AcceleratorConfig::default()
                },
                ..HybridConfig::default()
            };
            let hybrid = HybridMeloppr::new(g, params.clone(), config).expect("hybrid");
            let values: Vec<f64> = seeds
                .iter()
                .zip(&float_rankings)
                .map(|(&s, float_rank)| {
                    let outcome = hybrid.query(s).expect("int query");
                    precision_at_k(&outcome.ranking, float_rank, params.ppr.k)
                })
                .collect();
            let prec = mean_precision(&values).unwrap_or(0.0);
            table.row(vec![
                name.to_string(),
                q.to_string(),
                format!("{:.2}%", prec * 100.0),
                format!("{:.2}%", (1.0 - prec) * 100.0),
                if q == 10 {
                    bound.to_string()
                } else {
                    String::new()
                },
            ]);
        }
    }
    table.print();
    println!();
    println!("expected shape: loss shrinks as d grows (bigger Max = finer quantization)");
    println!("and as q grows (finer alpha approximation); the paper's d=max/2, q=10 sits");
    println!("comfortably under a few percent.");
}
