//! **Ablation A3 — the paper's future work**: parallel next-stage
//! computation.
//!
//! §VI-C: "MeLoPPR allows multiple next-stage nodes to be computed in
//! parallel, which can further reduce the overall latency. We leave this
//! for future experiments." Here are those experiments: wall-clock time of
//! the native Rust engine with 1–8 worker threads (the `Meloppr` backend's
//! `with_threads` option), verifying bit-identical results.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin ablation_parallel
//! [--seeds N] [--scale F]`

use std::time::Instant;

use meloppr_bench::table::TextTable;
use meloppr_bench::{sample_seeds, CorpusGraph, ExperimentScale};
use meloppr_core::backend::{Meloppr, PprBackend, QueryRequest};
use meloppr_core::{MelopprParams, SelectionStrategy};
use meloppr_graph::generators::corpus::PaperGraph;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 5);
    let paper = PaperGraph::G3Pubmed;
    let corpus = CorpusGraph::generate(paper, scale.scale_for(paper).min(0.5), 42);
    let g = &corpus.graph;
    let seeds = sample_seeds(g, scale.seeds, 77);
    let mut params = MelopprParams::paper_defaults();
    params.ppr.k = 200;
    params.selection = SelectionStrategy::TopFraction(0.2);

    println!("== Ablation A3: parallel stage-2 execution (paper future work) ==");
    println!(
        "graph: {}  seeds: {}  selection: 20% (many stage-2 diffusions)\n",
        corpus.label(),
        seeds.len()
    );

    let sequential = Meloppr::new(g, params.clone()).expect("params");
    let reference: Vec<_> = seeds
        .iter()
        .map(|&s| {
            sequential
                .query(&QueryRequest::new(s))
                .expect("query")
                .ranking
        })
        .collect();

    let mut table = TextTable::new(vec![
        "threads",
        "wall ms/query",
        "speedup",
        "identical results",
    ]);
    let mut base_ms: Option<f64> = None;
    for threads in [1usize, 2, 4, 8] {
        let backend = Meloppr::new(g, params.clone())
            .expect("params")
            .with_threads(threads)
            .expect("threads");
        let start = Instant::now();
        let mut identical = true;
        for (&s, reference) in seeds.iter().zip(&reference) {
            let outcome = backend.query(&QueryRequest::new(s)).expect("query");
            identical &= &outcome.ranking == reference;
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / seeds.len().max(1) as f64;
        let base = *base_ms.get_or_insert(ms);
        table.row(vec![
            threads.to_string(),
            format!("{ms:.2}"),
            format!("{:.2}x", base / ms),
            identical.to_string(),
        ]);
    }
    table.print();
    println!();
    println!("results are bit-identical across thread counts (stage-ordered merging);");
    println!("speedup saturates once stage-2 task count per stage is below the thread count,");
    println!("and is bounded by the serial stage-1 diffusion, the ordered merge, and the");
    println!("heaviest single stage-2 ball (task sizes are heavily skewed). Wall-clock");
    println!("numbers are environment-sensitive; treat them as indicative.");
}
