//! **Experiment E5 — Fig. 7**: precision–latency trade-offs of
//! MeLoPPR-CPU and MeLoPPR-FPGA (P = 16) against the LocalPPR-CPU
//! baseline, on all six graphs.
//!
//! For each graph and selection ratio this prints: top-k precision, the
//! modelled CPU speedup, the simulated FPGA speedup, and the BFS-time
//! fraction of the hybrid query (the paper's light-blue bars). Paper
//! headline: FPGA speedups from 3.1× to 21.8× at ~90 % precision, up to
//! 707.9× at lower precision; MeLoPPR-CPU shows slowdown cases on G1, G2,
//! G6 at high precision but 1.2×–2.58× gains on G3/G5.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin fig7_tradeoff
//! [--full] [--seeds N] [--scale F]`

use meloppr_bench::table::TextTable;
use meloppr_bench::{measure_tradeoff, sample_seeds, CorpusGraph, CpuCostModel, ExperimentScale};
use meloppr_core::backend::{Meloppr, QueryRequest};
use meloppr_core::{precision_at_k, MelopprParams, PprBackend, PrecisionClass, SelectionStrategy};
use meloppr_fpga::{AcceleratorConfig, HybridConfig};
use meloppr_graph::generators::corpus::PaperGraph;

const RATIOS: [f64; 4] = [0.01, 0.02, 0.05, 0.10];

/// The paper's annotated max FPGA speedups per graph (first bar of each
/// group in Fig. 7).
fn paper_max_fpga_speedup(pg: PaperGraph) -> f64 {
    match pg {
        PaperGraph::G1Citeseer => 48.9,
        PaperGraph::G2Cora => 13.4,
        PaperGraph::G3Pubmed => 78.6,
        PaperGraph::G4ComAmazon => 281.8,
        PaperGraph::G5ComDblp => 707.9,
        PaperGraph::G6ComYoutube => 416.8,
    }
}

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 5);
    let params = MelopprParams::paper_defaults();
    let cost = CpuCostModel::default();
    let hybrid = HybridConfig {
        accel: AcceleratorConfig {
            parallelism: 16,
            ..AcceleratorConfig::default()
        },
        ..HybridConfig::default()
    };

    println!("== Fig. 7: precision-latency trade-offs (baseline = LocalPPR-CPU model) ==");
    println!(
        "config: L=6 (3+3), k=200, FPGA P=16 @ 100 MHz, {} seeds per graph{} (paper: 500)\n",
        scale.seeds,
        if scale.full {
            ", FULL sizes"
        } else {
            " (quick mode; --full for paper sizes)"
        }
    );

    for (gi, pg) in PaperGraph::ALL.into_iter().enumerate() {
        let corpus = CorpusGraph::generate(pg, scale.scale_for(pg), 42 + gi as u64);
        let seeds = sample_seeds(&corpus.graph, scale.seeds, 2000 + gi as u64);
        println!(
            "-- {}  (|V|={}, |E|={}; paper max FPGA speedup {:.1}x) --",
            corpus.label(),
            corpus.graph.num_nodes(),
            corpus.graph.num_edges(),
            paper_max_fpga_speedup(pg)
        );
        let mut table = TextTable::new(vec![
            "ratio",
            "precision",
            "prec (FPGA)",
            "CPU speedup",
            "FPGA speedup",
            "BFS frac",
            "baseline ms",
            "FPGA ms",
            "diffusions",
        ]);
        for &ratio in &RATIOS {
            let pt = measure_tradeoff(&corpus.graph, &seeds, &params, ratio, &cost, &hybrid);
            table.row(vec![
                format!("{:.0}%", ratio * 100.0),
                format!("{:.1}%", pt.precision * 100.0),
                format!("{:.1}%", pt.precision_fpga * 100.0),
                format!("{:.2}x", pt.cpu_speedup),
                format!("{:.1}x", pt.fpga_speedup),
                format!("{:.0}%", pt.bfs_fraction * 100.0),
                format!("{:.2}", pt.baseline_ms),
                format!("{:.3}", pt.fpga_ms),
                format!("{:.1}", pt.diffusions),
            ]);
        }
        table.print();
        // A third axis the paper's figure lacks: the same staged
        // configuration scored down the host precision ladder. Worst
        // precision@200 of each narrow rung against its own Exact64
        // ranking, at the 5 % selection ratio.
        let ladder_params = MelopprParams {
            selection: SelectionStrategy::TopFraction(0.05),
            ..params.clone()
        };
        let backend = Meloppr::new(&corpus.graph, ladder_params).expect("backend");
        let ladder_seeds = &seeds[..seeds.len().min(2)];
        let mut line = format!(
            "precision ladder vs exact (ratio 5%, top-200, {} seeds):",
            ladder_seeds.len()
        );
        for (label, class) in [
            ("f32", PrecisionClass::Fast32),
            ("q16", PrecisionClass::Fixed(16)),
        ] {
            let mut worst = 1.0f64;
            for &seed in ladder_seeds {
                let exact = backend
                    .query(&QueryRequest::new(seed))
                    .expect("exact query")
                    .ranking;
                let quant = backend
                    .query(&QueryRequest::new(seed).with_precision(class))
                    .expect("quantized query")
                    .ranking;
                worst = worst.min(precision_at_k(&quant, &exact, 200));
            }
            line.push_str(&format!("  {label} {:.1}%", worst * 100.0));
        }
        println!("{line}");
        println!();
    }
    println!("shape checks vs paper: precision rises and speedup falls with the ratio;");
    println!("FPGA speedups >> CPU speedups; CPU can slow down at high ratios (G1/G2/G6);");
    println!("BFS fraction grows with P=16 since extraction becomes the bottleneck.");
}
