//! **Experiment E3 — Table II**: memory comparison of LocalPPR-CPU,
//! MeLoPPR-CPU and MeLoPPR-FPGA across the six corpus graphs.
//!
//! For each graph and query seed, the baseline's modelled working set
//! (depth-L ball) is compared against MeLoPPR's peak (largest per-stage
//! ball + aggregation state) and the FPGA's BRAM bytes (paper formula +
//! global table). Reported per graph: min~max memory, min~max reduction,
//! and the average reduction — the layout of Table II.
//!
//! Paper reference averages: CPU 1.51×/4.18×/6.43×/9.46×/13.43×/4.21×,
//! FPGA 73.6×/214.6×/389.8×/595.6×/2169.6×/8699.6× for G1..G6.
//!
//! Usage: `cargo run --release -p meloppr-bench --bin table2_memory
//! [--full] [--seeds N] [--scale F]`

use meloppr_bench::table::{fmt_mb, fmt_ratio, TextTable};
use meloppr_bench::{sample_seeds, CorpusGraph, ExperimentScale};
use meloppr_core::backend::{LocalPpr, PprBackend, QueryRequest};
use meloppr_core::{MelopprEngine, MelopprParams};
use meloppr_graph::generators::corpus::PaperGraph;

/// Paper Table II average reductions for (CPU, FPGA), G1..G6.
const PAPER_AVG: [(f64, f64); 6] = [
    (1.51, 73.64),
    (4.18, 214.58),
    (6.43, 389.83),
    (9.46, 595.55),
    (13.43, 2169.64),
    (4.21, 8699.55),
];

struct Row {
    label: String,
    base_min: usize,
    base_max: usize,
    cpu_red_min: f64,
    cpu_red_max: f64,
    cpu_red_avg: f64,
    fpga_min: usize,
    fpga_max: usize,
    fpga_red_min: f64,
    fpga_red_max: f64,
    fpga_red_avg: f64,
    cpu_min: usize,
    cpu_max: usize,
}

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1), 8);
    let params = MelopprParams::paper_defaults();
    println!("== Table II: memory comparison (LocalPPR-CPU vs MeLoPPR-CPU vs MeLoPPR-FPGA) ==");
    println!(
        "config: L=6 (3+3), k=200, c=10, {} seeds per graph{}\n",
        scale.seeds,
        if scale.full {
            ", FULL paper sizes"
        } else {
            " (quick mode; --full for paper sizes)"
        }
    );

    let mut rows = Vec::new();
    for (gi, paper) in PaperGraph::ALL.into_iter().enumerate() {
        let corpus = CorpusGraph::generate(paper, scale.scale_for(paper), 42 + gi as u64);
        let g = &corpus.graph;
        let seeds = sample_seeds(g, scale.seeds, 1000 + gi as u64);
        let baseline = LocalPpr::new(g, params.ppr).expect("baseline");
        // Table II's FPGA column needs the per-task diffusion trace, so
        // this experiment drives the staged engine directly; the baseline
        // goes through the unified API.
        let engine = MelopprEngine::new(g, params.clone()).expect("engine");

        let (mut base_min, mut base_max) = (usize::MAX, 0usize);
        let (mut cpu_min, mut cpu_max) = (usize::MAX, 0usize);
        let (mut fpga_min, mut fpga_max) = (usize::MAX, 0usize);
        let (mut crd_min, mut crd_max, mut crd_sum) = (f64::MAX, 0.0f64, 0.0f64);
        let (mut frd_min, mut frd_max, mut frd_sum) = (f64::MAX, 0.0f64, 0.0f64);

        for &s in &seeds {
            let base = baseline
                .query(&QueryRequest::new(s))
                .expect("baseline")
                .stats
                .peak_memory_bytes;
            let outcome = engine.query(s).expect("meloppr");
            let cpu = outcome.stats.peak_cpu_bytes;
            // The paper's Table II FPGA column applies its BRAM formula to
            // the sub-graph tables only (Bg + Ba + Br, §VI-B) — the fixed
            // c*k global table is excluded there.
            let fpga = outcome
                .stats
                .trace
                .iter()
                .map(|t| meloppr_core::memory::fpga_bram_bytes(t.ball_nodes, t.ball_edges))
                .max()
                .unwrap_or(0);

            base_min = base_min.min(base);
            base_max = base_max.max(base);
            cpu_min = cpu_min.min(cpu);
            cpu_max = cpu_max.max(cpu);
            fpga_min = fpga_min.min(fpga);
            fpga_max = fpga_max.max(fpga);

            let crd = base as f64 / cpu.max(1) as f64;
            let frd = base as f64 / fpga.max(1) as f64;
            crd_min = crd_min.min(crd);
            crd_max = crd_max.max(crd);
            crd_sum += crd;
            frd_min = frd_min.min(frd);
            frd_max = frd_max.max(frd);
            frd_sum += frd;
        }
        let n = seeds.len().max(1) as f64;
        rows.push(Row {
            label: corpus.label(),
            base_min,
            base_max,
            cpu_min,
            cpu_max,
            cpu_red_min: crd_min,
            cpu_red_max: crd_max,
            cpu_red_avg: crd_sum / n,
            fpga_min,
            fpga_max,
            fpga_red_min: frd_min,
            fpga_red_max: frd_max,
            fpga_red_avg: frd_sum / n,
        });
    }

    let mut table = TextTable::new(vec![
        "Graph",
        "LocalPPR MB",
        "MeLoPPR-CPU MB",
        "CPU reduction",
        "CPU avg (paper)",
        "FPGA MB",
        "FPGA reduction",
        "FPGA avg (paper)",
    ]);
    for (gi, r) in rows.iter().enumerate() {
        let (paper_cpu, paper_fpga) = PAPER_AVG[gi];
        table.row(vec![
            r.label.clone(),
            format!("{}~{}", fmt_mb(r.base_min), fmt_mb(r.base_max)),
            format!("{}~{}", fmt_mb(r.cpu_min), fmt_mb(r.cpu_max)),
            format!("{}~{}", fmt_ratio(r.cpu_red_min), fmt_ratio(r.cpu_red_max)),
            format!("{} ({paper_cpu}x)", fmt_ratio(r.cpu_red_avg)),
            format!("{}~{}", fmt_mb(r.fpga_min), fmt_mb(r.fpga_max)),
            format!(
                "{}~{}",
                fmt_ratio(r.fpga_red_min),
                fmt_ratio(r.fpga_red_max)
            ),
            format!("{} ({paper_fpga}x)", fmt_ratio(r.fpga_red_avg)),
        ]);
    }
    table.print();
    println!();
    println!("notes: CPU bytes follow the word model of meloppr-core::memory (8-byte words,");
    println!("understating Python overhead, so CPU reductions are conservative vs the paper's");
    println!("tracemalloc numbers); FPGA bytes use the paper's exact BRAM formula + c*k table.");
    println!("Denser graphs enjoy larger savings, matching the paper's observation on G3-G5.");
}
