//! Deadline-aware PPR serving on a loopback socket.
//!
//! Spins up the long-lived serving front-end (`meloppr::server`) over a
//! five-backend router on a synthetic social graph, then plays three
//! client scenarios against it:
//!
//! 1. **Comfortable deadlines** — requests route to the most precise
//!    backend that fits and complete well inside their budget.
//! 2. **Tight deadlines** — late-risk requests route to cheaper
//!    backends, and impossible ones fail fast with a typed
//!    `deadline-unmeetable` rejection instead of queueing doomed work.
//! 3. **A burst** — a pipelined flood saturates the bounded queue; the
//!    server sheds the requests with the most deadline slack
//!    (`queue-full`) and keeps tail latency of the accepted ones
//!    bounded.
//!
//! Run with: `cargo run --release --example serving`

use std::net::TcpStream;
use std::time::Duration;

use meloppr::backend::{ExactPower, LocalPpr, Meloppr, MonteCarlo};
use meloppr::graph::generators;
use meloppr::server::{
    write_frame, FrameEvent, FrameReader, PprServer, QuerySpec, Request, Response, ServerConfig,
};
use meloppr::{MelopprParams, PprParams, Router, SelectionStrategy};

/// A minimal blocking protocol client.
struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            reader: FrameReader::new(),
        })
    }

    fn send(&mut self, request: &Request) -> std::io::Result<()> {
        write_frame(&mut self.stream, &request.encode())
    }

    fn recv(&mut self) -> std::io::Result<Response> {
        loop {
            match self.reader.read_event(&mut self.stream)? {
                FrameEvent::Frame(payload) => {
                    return Response::parse(&payload).map_err(std::io::Error::other)
                }
                FrameEvent::Idle => continue,
                FrameEvent::Eof => {
                    return Err(std::io::Error::other("server closed the connection"))
                }
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = generators::planted_partition(6, 200, 0.05, 0.002, 7)?;
    let ppr = PprParams::new(0.85, 4, 10)?;
    let staged = MelopprParams::two_stage(ppr, 2, 2, SelectionStrategy::TopFraction(0.2))?;
    let mut router = Router::new()
        .with_backend(Box::new(ExactPower::new(&graph, ppr)?))
        .with_backend(Box::new(LocalPpr::new(&graph, ppr)?))
        .with_backend(Box::new(MonteCarlo::new(&graph, ppr, 3000, 42)?))
        .with_backend(Box::new(Meloppr::new(&graph, staged)?))
        .with_self_calibration(true);
    router.prepare()?;

    let server = PprServer::bind(
        &router,
        ServerConfig {
            workers: 2,
            queue_capacity: 4,
            default_deadline_ms: 50.0,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )?;
    let addr = server.local_addr();
    println!("serving on {addr} (2 workers, queue depth 4)");

    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let handle = scope.spawn(|| server.serve());

        // Scenario 1: comfortable deadlines, sequential request/response.
        let mut client = Client::connect(addr)?;
        println!("\n-- comfortable deadlines (200 ms) --");
        for (id, seed) in [(1u64, 0u32), (2, 201), (3, 402)] {
            client.send(&Request::Query(
                QuerySpec::new(id, seed).with_deadline_ms(200.0),
            ))?;
            match client.recv()? {
                Response::Ranking {
                    backend,
                    latency_us,
                    ranking,
                    ..
                } => {
                    let (top, score) = ranking.first().copied().unwrap_or((0, 0.0));
                    println!(
                        "  seed {seed:>4} -> node {top:>4} ({score:.4}) \
                         via {backend} in {latency_us} us"
                    );
                }
                other => println!("  seed {seed:>4} -> {other:?}"),
            }
        }

        // Scenario 2: deadlines too tight for anything to serve.
        println!("\n-- impossible deadlines (0.001 ms) --");
        client.send(&Request::Query(
            QuerySpec::new(10, 17).with_deadline_ms(0.001),
        ))?;
        match client.recv()? {
            Response::Rejected {
                reason,
                predicted_us,
                ..
            } => println!("  fast-failed: {reason} (cheapest estimate {predicted_us:?} us)"),
            other => println!("  unexpected: {other:?}"),
        }

        // Scenario 3: a pipelined burst against a queue of depth 4.
        println!("\n-- burst of 40 pipelined requests --");
        let mut burst = Client::connect(addr)?;
        let n = 40u64;
        for id in 0..n {
            burst.send(&Request::Query(
                QuerySpec::new(id, (id as u32 * 31) % 1200).with_deadline_ms(250.0),
            ))?;
        }
        let (mut served, mut shed) = (0u32, 0u32);
        for _ in 0..n {
            match burst.recv()? {
                Response::Ranking { .. } => served += 1,
                Response::Rejected { .. } => shed += 1,
                other => println!("  unexpected: {other:?}"),
            }
        }
        println!("  {served} served, {shed} shed (bounded queue at work)");

        // Ask the server for its own view, then stop it.
        client.send(&Request::Stats)?;
        if let Response::Stats(line) = client.recv()? {
            println!("\nserver stats: {line}");
        }
        client.send(&Request::Shutdown)?;
        let _ = client.recv()?; // final stats frame
        handle.join().expect("serve thread panicked")?;
        Ok(())
    })?;

    let snapshot = server.telemetry();
    println!("\nfinal telemetry:\n{snapshot}");
    assert!(snapshot.queue_high_water <= 4, "queue depth stayed bounded");
    std::thread::sleep(Duration::from_millis(10));
    Ok(())
}
