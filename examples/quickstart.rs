//! Sixty-second tour of the MeLoPPR API.
//!
//! Builds a small social graph, runs the exact baseline and a two-stage
//! MeLoPPR query, and compares them.
//!
//! Run with: `cargo run --example quickstart`

use meloppr::core::precision::precision_at_k;
use meloppr::graph::generators;
use meloppr::{
    exact_top_k, local_ppr, MelopprEngine, MelopprParams, PprParams, SelectionStrategy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Zachary's karate club: the classic two-faction social network.
    let graph = generators::karate_club();
    let seed = 0; // the instructor

    // A PPR query: walks of up to L = 4 steps, top-5 answer.
    let params = PprParams::new(0.85, 4, 5)?;

    // 1. Exact ground truth (full-graph diffusion).
    let exact = exact_top_k(&graph, seed, &params)?;
    println!("exact top-5 from node {seed}:");
    for (node, score) in &exact {
        println!("  node {node:>2}  score {score:.4}");
    }

    // 2. The LocalPPR baseline: one diffusion on the whole depth-4 ball.
    let baseline = local_ppr(&graph, seed, &params)?;
    println!(
        "\nbaseline ball: {} nodes / {} edges, modelled memory {} bytes",
        baseline.stats.ball_nodes,
        baseline.stats.ball_edges,
        baseline.stats.memory.total()
    );

    // 3. MeLoPPR: the same query decomposed into two stages of depth 2,
    //    expanding only the most promising 30% of next-stage nodes.
    let meloppr_params = MelopprParams::two_stage(
        params,
        2,
        2,
        SelectionStrategy::TopFraction(0.3),
    )?;
    let engine = MelopprEngine::new(&graph, meloppr_params)?;
    let outcome = engine.query(seed)?;

    println!("\nMeLoPPR top-5 (2 + 2 stages, 30% selection):");
    for (node, score) in &outcome.ranking {
        println!("  node {node:>2}  score {score:.4}");
    }
    println!(
        "\n{} diffusions, peak task memory {} bytes ({}x less than the baseline)",
        outcome.stats.total_diffusions,
        outcome.stats.peak_task_memory.total(),
        baseline.stats.memory.total() / outcome.stats.peak_task_memory.total().max(1)
    );
    println!(
        "precision vs exact: {:.0}%",
        precision_at_k(&outcome.ranking, &exact, 5) * 100.0
    );
    Ok(())
}
