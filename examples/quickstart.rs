//! Sixty-second tour of the MeLoPPR API.
//!
//! Builds a small social graph, runs the exact baseline and a two-stage
//! MeLoPPR query through the unified `PprBackend` API, and compares them.
//!
//! Run with: `cargo run --example quickstart`

use meloppr::backend::{LocalPpr, Meloppr, PprBackend, QueryRequest};
use meloppr::core::precision::precision_at_k;
use meloppr::graph::generators;
use meloppr::{exact_top_k, MelopprParams, PprParams, SelectionStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Zachary's karate club: the classic two-faction social network.
    let graph = generators::karate_club();
    let request = QueryRequest::new(0); // the instructor

    // A PPR query: walks of up to L = 4 steps, top-5 answer.
    let params = PprParams::new(0.85, 4, 5)?;

    // 1. Exact ground truth (full-graph diffusion).
    let exact = exact_top_k(&graph, request.seed, &params)?;
    println!("exact top-5 from node {}:", request.seed);
    for (node, score) in &exact {
        println!("  node {node:>2}  score {score:.4}");
    }

    // 2. The LocalPPR baseline: one diffusion on the whole depth-4 ball.
    let baseline = LocalPpr::new(&graph, params)?.query(&request)?;
    println!(
        "\nbaseline ball: {} nodes / {} edges, modelled memory {} bytes",
        baseline.stats.stages[0].max_ball_nodes,
        baseline.stats.stages[0].max_ball_edges,
        baseline.stats.peak_memory_bytes
    );

    // 3. MeLoPPR: the same query decomposed into two stages of depth 2,
    //    expanding only the most promising 30% of next-stage nodes. Same
    //    request, same outcome shape — only the backend differs.
    let meloppr_params =
        MelopprParams::two_stage(params, 2, 2, SelectionStrategy::TopFraction(0.3))?;
    let backend = Meloppr::new(&graph, meloppr_params)?;
    let outcome = backend.query(&request)?;

    println!("\nMeLoPPR top-5 (2 + 2 stages, 30% selection):");
    for (node, score) in &outcome.ranking {
        println!("  node {node:>2}  score {score:.4}");
    }
    // peak_task_memory_bytes is the paper's Table II metric: the largest
    // single task's working set.
    println!(
        "\n{} diffusions, peak task memory {} bytes ({:.1}x less than the baseline)",
        outcome.stats.total_diffusions,
        outcome.stats.peak_task_memory_bytes,
        baseline.stats.peak_task_memory_bytes as f64
            / outcome.stats.peak_task_memory_bytes.max(1) as f64
    );
    println!(
        "precision vs exact: {:.0}%",
        precision_at_k(&outcome.ranking, &exact, 5) * 100.0
    );
    Ok(())
}
