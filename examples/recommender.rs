//! Who-to-follow recommendation on a synthetic social network.
//!
//! The paper's motivating application (§I): given a user, recommend the
//! `k` most relevant other users by Personalized PageRank, under a tight
//! memory budget. This example runs MeLoPPR on a community-structured
//! graph and checks that the recommendations respect community boundaries.
//!
//! Run with: `cargo run --release --example recommender`

use meloppr::backend::{BatchExecutor, Meloppr, QueryRequest};
use meloppr::core::precision::precision_at_k;
use meloppr::graph::generators;
use meloppr::{exact_top_k, MelopprParams, PprParams, SelectionStrategy};

const BLOCKS: usize = 8;
const BLOCK_SIZE: usize = 250;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A planted-partition "social network": 8 communities of 250 users,
    // dense inside (p_in) and sparse across (p_out).
    let graph = generators::planted_partition(BLOCKS, BLOCK_SIZE, 0.04, 0.001, 7)?;
    println!(
        "social graph: {} users, {} friendships, {} communities",
        graph.num_nodes(),
        graph.num_edges(),
        BLOCKS
    );

    let params = MelopprParams::two_stage(
        PprParams::new(0.85, 6, 20)?,
        3,
        3,
        SelectionStrategy::TopFraction(0.05),
    )?;
    // A who-to-follow service would keep one backend per graph shard and
    // feed it whole request batches: the executor runs them on a scoped
    // worker pool with one reusable query workspace per worker.
    let backend = Meloppr::new(&graph, params)?;

    let users = [10u32, 760, 1510];
    let requests: Vec<QueryRequest> = users.iter().map(|&u| QueryRequest::new(u)).collect();
    let batch = BatchExecutor::new(2)?.run(&backend, &requests)?;
    println!(
        "served {} users in {:.2} ms ({:.0} queries/s)",
        batch.stats.queries,
        batch.stats.wall_clock.as_secs_f64() * 1e3,
        batch.stats.throughput_qps()
    );

    for (&user, outcome) in users.iter().zip(&batch.outcomes) {
        let community = user as usize / BLOCK_SIZE;
        let same_community = outcome
            .ranking
            .iter()
            .filter(|&&(v, _)| v as usize / BLOCK_SIZE == community)
            .count();
        let exact = exact_top_k(&graph, user, &backend.params().ppr)?;
        let precision = precision_at_k(&outcome.ranking, &exact, 20);

        println!(
            "\nuser {user} (community {community}): top-20 recommendations, \
             {same_community}/20 in the same community, precision {:.0}%",
            precision * 100.0
        );
        for (v, score) in outcome.ranking.iter().take(5) {
            let flag = if *v as usize / BLOCK_SIZE == community {
                "same"
            } else {
                "OTHER"
            };
            println!("  follow {v:>4}  score {score:.5}  [{flag} community]");
        }
        assert!(
            same_community >= 15,
            "recommendations should stay inside the community"
        );
    }
    println!("\nrecommendations respect community structure — as PPR should.");
    Ok(())
}
