//! Who-to-follow recommendation on a synthetic social network.
//!
//! The paper's motivating application (§I): given a user, recommend the
//! `k` most relevant other users by Personalized PageRank, under a tight
//! memory budget. This example runs MeLoPPR on a community-structured
//! graph and checks that the recommendations respect community boundaries.
//!
//! Run with: `cargo run --release --example recommender`

use std::sync::Arc;

use meloppr::backend::{BatchExecutor, Meloppr, QueryRequest};
use meloppr::core::precision::precision_at_k;
use meloppr::graph::generators;
use meloppr::{
    exact_top_k, format_bytes, AdmissionPolicy, CacheBudget, ConcurrentSubgraphCache,
    MelopprParams, PprBackend, PprParams, SelectionStrategy,
};

const BLOCKS: usize = 8;
const BLOCK_SIZE: usize = 250;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A planted-partition "social network": 8 communities of 250 users,
    // dense inside (p_in) and sparse across (p_out).
    let graph = generators::planted_partition(BLOCKS, BLOCK_SIZE, 0.04, 0.001, 7)?;
    println!(
        "social graph: {} users, {} friendships, {} communities",
        graph.num_nodes(),
        graph.num_edges(),
        BLOCKS
    );

    let params = MelopprParams::two_stage(
        PprParams::new(0.85, 6, 20)?,
        3,
        3,
        SelectionStrategy::TopFraction(0.05),
    )?;
    // A who-to-follow service would keep one backend per graph shard and
    // feed it whole request batches: the executor runs them on a scoped
    // worker pool with one reusable query workspace per worker, and all
    // workers share one concurrent sub-graph cache — celebrity users and
    // their hub neighborhoods recur across requests, so their BFS balls
    // are extracted once and reused zero-copy. The cache budget is in
    // BYTES (a celebrity's hub ball and a lurker's leaf ball are not the
    // same cost; the serving box has megabytes, not "slots") and is an
    // enforced invariant: admission reserves measured bytes before an
    // entry becomes resident. A frequency-gated admission policy keeps
    // one-off giant neighborhoods (a crawler hitting a random whale
    // once) from evicting the hot residents: an over-budget ball only
    // becomes resident on its second sighting.
    let cache_budget = 8 << 20; // 8 MiB of resident balls
    let cache = Arc::new(
        ConcurrentSubgraphCache::with_budget(CacheBudget::bytes(cache_budget))
            .with_admission(AdmissionPolicy::FrequencyGated(600)),
    );
    let backend = Meloppr::new(&graph, params)?.with_shared_cache(Arc::clone(&cache));

    let users = [10u32, 760, 1510];
    let requests: Vec<QueryRequest> = users.iter().map(|&u| QueryRequest::new(u)).collect();
    let batch = BatchExecutor::new(2)?.run(&backend, &requests)?;
    println!(
        "served {} users in {:.2} ms ({:.0} queries/s)",
        batch.stats.queries,
        batch.stats.wall_clock.as_secs_f64() * 1e3,
        batch.stats.throughput_qps()
    );

    for (&user, outcome) in users.iter().zip(&batch.outcomes) {
        let community = user as usize / BLOCK_SIZE;
        let same_community = outcome
            .ranking
            .iter()
            .filter(|&&(v, _)| v as usize / BLOCK_SIZE == community)
            .count();
        let exact = exact_top_k(&graph, user, &backend.params().ppr)?;
        let precision = precision_at_k(&outcome.ranking, &exact, 20);

        println!(
            "\nuser {user} (community {community}): top-20 recommendations, \
             {same_community}/20 in the same community, precision {:.0}%",
            precision * 100.0
        );
        for (v, score) in outcome.ranking.iter().take(5) {
            let flag = if *v as usize / BLOCK_SIZE == community {
                "same"
            } else {
                "OTHER"
            };
            println!("  follow {v:>4}  score {score:.5}  [{flag} community]");
        }
        assert!(
            same_community >= 15,
            "recommendations should stay inside the community"
        );
    }
    // Production traffic is skewed: the same hot users refresh their
    // feeds over and over. Replay a hot mix and watch the cache absorb
    // the extraction work (hits charge zero BFS). The first hot batch
    // still pays a few extractions: the frequency gate rejected the
    // over-600-node hub balls on their *first* sighting (batch one), so
    // their second sighting here is what proves the demand and admits
    // them.
    let hot_mix: Vec<QueryRequest> = (0..48)
        .map(|i| QueryRequest::new(users[i % users.len()]))
        .collect();
    let hot = BatchExecutor::new(2)?.run(&backend, &hot_mix)?;
    // BatchStats::cache is this backend's consumer-attributed delta: it
    // counts exactly this batch's lookups, even if another service
    // shared the same cache Arc concurrently.
    let cache_stats = hot.stats.cache.expect("shared cache attached");
    println!(
        "\nhot traffic: {} queries, {} ball extractions (second-sighting admissions \
         of over-budget hub balls), {:.0}% of ball lookups served from cache",
        hot.stats.queries,
        cache_stats.extractions,
        cache_stats.hit_rate() * 100.0,
    );
    // Once demand is proven, steady-state hot traffic is completely
    // extraction-free: zero BFS edges scanned across a whole batch.
    let steady = BatchExecutor::new(2)?.run(&backend, &hot_mix)?;
    let steady_stats = steady.stats.cache.expect("shared cache attached");
    println!(
        "steady state: {} queries, {} ball extractions, {} BFS edges scanned",
        steady.stats.queries, steady_stats.extractions, steady.stats.bfs_edges_scanned,
    );
    assert_eq!(
        steady_stats.extractions, 0,
        "every hot ball is resident after its demand was proven"
    );
    assert_eq!(
        steady.stats.bfs_edges_scanned, 0,
        "hits must charge zero BFS"
    );
    let consumer = backend
        .cache_consumer()
        .expect("shared mode has a consumer");
    println!(
        "cache telemetry: windowed hit rate {:.0}% (recent lookups, what routing \
         estimates use) vs {:.0}% lifetime; {} over-budget admissions rejected globally",
        consumer.windowed_hit_rate() * 100.0,
        consumer.stats().hit_rate() * 100.0,
        cache.stats().rejected_admissions,
    );
    // Byte-denominated governance next to the hit-rate lines: resident
    // bytes against the budget, plus the eviction/rejection churn.
    println!(
        "memory governance: {} resident of {} budget ({} balls), \
         {} evicted, {} admissions rejected",
        format_bytes(cache.resident_bytes()),
        format_bytes(cache_budget),
        cache.resident_entries(),
        cache.stats().evictions,
        cache.stats().rejected_admissions,
    );
    assert!(
        cache.resident_bytes() <= cache_budget,
        "the byte budget is an enforced invariant"
    );

    println!("\nrecommendations respect community structure — as PPR should.");
    Ok(())
}
