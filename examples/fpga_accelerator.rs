//! Running a query on the simulated CPU+FPGA platform.
//!
//! Demonstrates the co-designed execution of §V: host-side BFS extraction,
//! fixed-point diffusion on the PE array, the bounded on-chip global score
//! table, and the resulting end-to-end latency breakdown.
//!
//! Run with: `cargo run --release --example fpga_accelerator`

use meloppr::backend::{PprBackend, QueryRequest};
use meloppr::fpga::ResourceModel;
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    AcceleratorConfig, FpgaHybrid, HybridConfig, MelopprParams, PprParams, SelectionStrategy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's G1 (citeseer) stand-in at full Table II size.
    let graph = PaperGraph::G1Citeseer.generate(42)?;
    println!(
        "graph: {} — {} nodes, {} edges",
        PaperGraph::G1Citeseer,
        graph.num_nodes(),
        graph.num_edges()
    );

    let params = MelopprParams::two_stage(
        PprParams::new(0.85, 6, 10)?,
        3,
        3,
        SelectionStrategy::TopFraction(0.02),
    )?
    .with_table_factor(10);

    // P = 16 at 100 MHz, the paper's Fig. 7 configuration.
    let config = HybridConfig {
        accel: AcceleratorConfig {
            parallelism: 16,
            ..AcceleratorConfig::default()
        },
        ..HybridConfig::default()
    };
    // The backend wraps the simulator behind the unified query API; the
    // underlying engine stays reachable for the detailed latency split.
    let backend = FpgaHybrid::new(&graph, params, config)?;
    let format = backend.engine().format();
    println!(
        "fixed-point format: Max = {}, alpha ~= {:.4} ({} / 2^{})",
        format.max_value(),
        format.effective_alpha(),
        format.alpha_p(),
        format.q()
    );

    let outcome = backend
        .query(&QueryRequest::new(0))
        .map_err(|e| e.to_string())?;
    println!("\ntop-10 (dequantized scores):");
    for (node, score) in &outcome.ranking {
        println!("  node {node:>4}  score {score:.5}");
    }

    let raw = backend.engine().query(0)?;
    let lat = &raw.latency;
    println!("\nlatency breakdown ({:.3} ms total):", lat.total_ms());
    println!(
        "  host BFS       {:>9.1} ns ({:.0}%)",
        lat.host_bfs_ns,
        lat.bfs_fraction() * 100.0
    );
    println!("  diffusion      {:>9.1} ns", lat.diffusion_ns);
    println!("  scheduling     {:>9.1} ns", lat.scheduling_ns);
    println!("  data movement  {:>9.1} ns", lat.data_movement_ns);

    let stats = &outcome.stats;
    println!(
        "\n{} diffusions, peak BRAM {} bytes, {} global-table evictions \
         (simulated latency {:.3} ms)",
        stats.total_diffusions,
        stats.peak_memory_bytes,
        stats.table_evictions,
        stats.latency_estimate_ns.unwrap_or(0.0) / 1e6
    );

    // What does this design cost on the KC705?
    let resources = ResourceModel::kc705().utilization(16);
    println!(
        "\nKC705 @ P=16: {} LUTs ({:.1}%), {} BRAM36 blocks ({:.1}%)",
        resources.luts,
        resources.lut_fraction * 100.0,
        resources.bram_blocks,
        resources.bram_fraction * 100.0
    );
    Ok(())
}
