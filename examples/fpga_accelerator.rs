//! Running a query on the simulated CPU+FPGA platform.
//!
//! Demonstrates the co-designed execution of §V: host-side BFS extraction,
//! fixed-point diffusion on the PE array, the bounded on-chip global score
//! table, and the resulting end-to-end latency breakdown.
//!
//! Run with: `cargo run --release --example fpga_accelerator`

use meloppr::fpga::ResourceModel;
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    AcceleratorConfig, HybridConfig, HybridMeloppr, MelopprParams, PprParams,
    SelectionStrategy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's G1 (citeseer) stand-in at full Table II size.
    let graph = PaperGraph::G1Citeseer.generate(42)?;
    println!(
        "graph: {} — {} nodes, {} edges",
        PaperGraph::G1Citeseer,
        graph.num_nodes(),
        graph.num_edges()
    );

    let params = MelopprParams::two_stage(
        PprParams::new(0.85, 6, 10)?,
        3,
        3,
        SelectionStrategy::TopFraction(0.02),
    )?
    .with_table_factor(10);

    // P = 16 at 100 MHz, the paper's Fig. 7 configuration.
    let config = HybridConfig {
        accel: AcceleratorConfig {
            parallelism: 16,
            ..AcceleratorConfig::default()
        },
        ..HybridConfig::default()
    };
    let engine = HybridMeloppr::new(&graph, params, config)?;
    println!(
        "fixed-point format: Max = {}, alpha ~= {:.4} ({} / 2^{})",
        engine.format().max_value(),
        engine.format().effective_alpha(),
        engine.format().alpha_p(),
        engine.format().q()
    );

    let outcome = engine.query(0)?;
    println!("\ntop-10 (dequantized scores):");
    for (node, score) in &outcome.ranking {
        println!("  node {node:>4}  score {score:.5}");
    }

    let lat = &outcome.latency;
    println!("\nlatency breakdown ({:.3} ms total):", lat.total_ms());
    println!("  host BFS       {:>9.1} ns ({:.0}%)", lat.host_bfs_ns, lat.bfs_fraction() * 100.0);
    println!("  diffusion      {:>9.1} ns", lat.diffusion_ns);
    println!("  scheduling     {:>9.1} ns", lat.scheduling_ns);
    println!("  data movement  {:>9.1} ns", lat.data_movement_ns);

    let stats = &outcome.stats;
    println!(
        "\n{} diffusions, peak BRAM {} bytes, {} global-table evictions",
        stats.diffusions, stats.bram_peak_bytes, stats.table_evictions
    );

    // What does this design cost on the KC705?
    let resources = ResourceModel::kc705().utilization(16);
    println!(
        "\nKC705 @ P=16: {} LUTs ({:.1}%), {} BRAM36 blocks ({:.1}%)",
        resources.luts,
        resources.lut_fraction * 100.0,
        resources.bram_blocks,
        resources.bram_fraction * 100.0
    );
    Ok(())
}
