//! Memory-budgeted PPR on an "edge device".
//!
//! The paper's motivation (§I): PPR must sometimes run on memory-
//! constrained devices (privacy-preserving personalization on a phone,
//! say). This example uses the budget planner to choose a stage split that
//! fits progressively tighter memory budgets, runs each plan through the
//! unified backend API, and verifies the peak working set actually stays
//! under each budget.
//!
//! Run with: `cargo run --release --example edge_device`

use meloppr::backend::{Meloppr, PprBackend, QueryRequest};
use meloppr::core::planner::plan_stages;
use meloppr::core::precision::precision_at_k;
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{exact_top_k, MelopprParams, PprParams, SelectionStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pubmed-like graph, scaled to laptop size.
    let graph = PaperGraph::G3Pubmed.generate_scaled(0.25, 42)?;
    let request = QueryRequest::new(77);
    let ppr = PprParams::new(0.85, 6, 50)?;
    let probe_seeds = [77u32, 500, 2500];
    let exact = exact_top_k(&graph, request.seed, &ppr)?;

    println!(
        "graph: pubmed stand-in at 25% scale ({} nodes, {} edges)\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    // From "server" to "microcontroller": shrink the budget 64x.
    let generous = plan_stages(&graph, &ppr, usize::MAX, &probe_seeds)?;
    let budgets = [
        ("server     (unlimited)", usize::MAX),
        ("laptop     (1/4 ball)", generous.expected_peak_bytes / 4),
        ("phone      (1/16 ball)", generous.expected_peak_bytes / 16),
        ("micro      (1/64 ball)", generous.expected_peak_bytes / 64),
    ];

    let mut prev_peak = usize::MAX;
    for (label, budget) in budgets {
        let plan = plan_stages(&graph, &ppr, budget, &probe_seeds)?;
        let params = MelopprParams {
            ppr,
            stages: plan.stages.clone(),
            selection: SelectionStrategy::TopFraction(0.05),
            ..MelopprParams::paper_defaults()
        };
        let backend = Meloppr::new(&graph, params)?;
        let outcome = backend.query(&request)?;
        let precision = precision_at_k(&outcome.ranking, &exact, ppr.k);
        // The peak *task* memory is what the device constraint bounds
        // (the whole-query peak also counts persistent aggregation).
        let peak = outcome.stats.peak_task_memory_bytes;
        println!(
            "{label}: stages {:?}  peak task {peak:>8} bytes (plan fits: {})  precision {:>5.1}%",
            plan.stages,
            plan.fits_budget,
            precision * 100.0
        );
        // The plan is based on *average* probed ball sizes, so a specific
        // seed may exceed its budget; what must hold is that tighter
        // budgets never increase the working set.
        assert!(peak <= prev_peak, "peak must shrink as the budget tightens");
        prev_peak = peak;
    }
    println!("\ntighter budgets -> deeper stage splits -> smaller working sets,");
    println!("traded against precision. That is MeLoPPR's adaptive knob.");
    Ok(())
}
