//! The latency↔precision trade-off in action (the paper's core knob).
//!
//! Sweeps the next-stage selection ratio on a cora-like citation graph and
//! prints precision alongside the work performed — a miniature of the
//! paper's Fig. 6/7.
//!
//! Run with: `cargo run --release --example precision_sweep`

use meloppr::backend::{Meloppr, PprBackend, QueryRequest};
use meloppr::core::precision::precision_at_k;
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{exact_top_k, MelopprParams, PprParams, SelectionStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = PaperGraph::G2Cora.generate(42)?;
    let seed = 100;
    let ppr = PprParams::new(0.85, 6, 50)?;
    let exact = exact_top_k(&graph, seed, &ppr)?;

    println!(
        "graph: {} ({} nodes); seed {seed}; k = {}",
        PaperGraph::G2Cora,
        graph.num_nodes(),
        ppr.k
    );
    println!("\nratio    precision  diffusions  edge-updates  peak-mem-bytes");
    for ratio in [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0] {
        let params = MelopprParams::two_stage(ppr, 3, 3, SelectionStrategy::TopFraction(ratio))?;
        let backend = Meloppr::new(&graph, params)?;
        let outcome = backend.query(&QueryRequest::new(seed))?;
        let precision = precision_at_k(&outcome.ranking, &exact, ppr.k);
        println!(
            "{:>5.1}%   {:>8.1}%  {:>10}  {:>12}  {:>15}",
            ratio * 100.0,
            precision * 100.0,
            outcome.stats.total_diffusions,
            outcome.stats.diffusion_edge_updates,
            outcome.stats.peak_memory_bytes,
        );
    }
    println!("\nmore expansion -> more work, higher precision; 100% selection is exact.");
    Ok(())
}
