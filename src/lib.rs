//! # MeLoPPR — memory-efficient, low-latency Personalized PageRank
//!
//! A from-scratch Rust reproduction of *"MeLoPPR: Software/Hardware
//! Co-design for Memory-efficient Low-latency Personalized PageRank"*
//! (Li, Chen, Zirnheld, Li, Hao — DAC 2021, arXiv:2104.09616).
//!
//! This facade crate re-exports the three library layers so applications
//! can depend on a single crate:
//!
//! * [`graph`] ([`meloppr_graph`]) — CSR graphs, BFS ball extraction,
//!   sub-graphs, generators (including synthetic stand-ins for the
//!   paper's six SNAP evaluation graphs) and SNAP edge-list I/O;
//! * [`core`] ([`meloppr_core`]) — the MeLoPPR algorithm: graph
//!   diffusion, stage/linear decomposition, sparsity-driven selection,
//!   baselines, precision and memory models, and the **unified query
//!   API** ([`PprBackend`], [`QueryRequest`], [`Router`]);
//! * [`fpga`] ([`meloppr_fpga`]) — the cycle-approximate CPU+FPGA
//!   accelerator simulator (fixed-point PEs, conflict scheduler, BRAM
//!   tables, KC705 resource model) and its [`FpgaHybrid`] backend.
//!
//! The most commonly used items are also re-exported at the crate root.
//!
//! ## Quick start
//!
//! Every solver answers the same [`QueryRequest`] through the
//! [`PprBackend`] trait:
//!
//! ```
//! use meloppr::backend::{Meloppr, PprBackend, QueryRequest};
//! use meloppr::graph::generators;
//! use meloppr::{MelopprParams, PprParams, SelectionStrategy};
//!
//! # fn main() -> Result<(), meloppr::core::PprError> {
//! // Who should node 0 of the karate club follow?
//! let g = generators::karate_club();
//! let params = MelopprParams::two_stage(
//!     PprParams::new(0.85, 4, 5)?,
//!     2,
//!     2,
//!     SelectionStrategy::TopFraction(0.3),
//! )?;
//! let backend = Meloppr::new(&g, params)?;
//! let outcome = backend.query(&QueryRequest::new(0))?;
//! for (node, score) in &outcome.ranking {
//!     println!("node {node}: {score:.4}");
//! }
//! # Ok(())
//! # }
//! ```
//!
//! ## Choosing a backend
//!
//! Five interchangeable solvers implement [`PprBackend`]; hold them as
//! `Box<dyn PprBackend>` or let the [`Router`] pick one per request from
//! its budget hint:
//!
//! | Backend | Exact? | Memory profile | Reach for it when |
//! |---|---|---|---|
//! | [`backend::ExactPower`] | yes | dense vectors over the full graph | ground truth, small graphs, evaluation |
//! | [`backend::LocalPpr`] | yes | the whole depth-`L` ball `G_L(s)` | exactness required and the ball fits memory |
//! | [`backend::Meloppr`] | at 100 % selection | one stage ball at a time | the paper's sweet spot: tight memory, high precision; threads/cache options |
//! | [`backend::MonteCarlo`] | no | near-constant | very tight memory/latency, approximate answers fine |
//! | [`FpgaHybrid`] | no (fixed-point) | on-chip BRAM tables | lowest simulated latency; accelerator studies |
//!
//! ```
//! use meloppr::backend::{LocalPpr, Meloppr, MonteCarlo, QueryRequest, Router};
//! use meloppr::graph::generators;
//! use meloppr::{MelopprParams, PprParams};
//!
//! # fn main() -> Result<(), meloppr::core::PprError> {
//! let g = generators::karate_club();
//! let ppr = PprParams::new(0.85, 4, 5)?;
//! let mut staged = MelopprParams::paper_defaults();
//! staged.ppr = ppr;
//! staged.stages = vec![2, 2];
//!
//! let router = Router::new()
//!     .with_backend(Box::new(LocalPpr::new(&g, ppr)?))
//!     .with_backend(Box::new(Meloppr::new(&g, staged)?))
//!     .with_backend(Box::new(MonteCarlo::new(&g, ppr, 2000, 42)?));
//!
//! // Tight memory routes away from the depth-L ball; exactness routes
//! // toward it.
//! let tight = QueryRequest::new(0).with_max_memory_bytes(4 << 10);
//! let exact = QueryRequest::new(0).with_min_precision(1.0);
//! assert_eq!(router.query(&tight)?.ranking.len(), 5);
//! assert_eq!(router.query(&exact)?.ranking.len(), 5);
//! # Ok(())
//! # }
//! ```
//!
//! ## Serving batches
//!
//! Every query borrows its scratch storage (BFS frontiers, sub-graph
//! buffers, dense score vectors) from a reusable [`QueryWorkspace`], so
//! steady-state serving does not touch the allocator. For whole batches,
//! [`BatchExecutor`] runs requests on a scoped worker pool with one
//! workspace per worker and returns outcomes in request order plus
//! aggregate [`BatchStats`]:
//!
//! ```
//! use meloppr::backend::{BatchExecutor, Meloppr, QueryRequest};
//! use meloppr::graph::generators;
//! use meloppr::{MelopprParams, PprParams, SelectionStrategy};
//!
//! # fn main() -> Result<(), meloppr::core::PprError> {
//! let g = generators::karate_club();
//! let params = MelopprParams::two_stage(
//!     PprParams::new(0.85, 4, 5)?,
//!     2,
//!     2,
//!     SelectionStrategy::TopFraction(0.3),
//! )?;
//! let backend = Meloppr::new(&g, params)?;
//! let reqs: Vec<QueryRequest> = (0..16).map(QueryRequest::new).collect();
//! let batch = BatchExecutor::new(4)?.run(&backend, &reqs)?;
//! assert_eq!(batch.outcomes.len(), 16);
//! println!("{:.0} queries/s", batch.stats.throughput_qps());
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable scenarios (recommender,
//! accelerated queries, precision sweeps, edge-device planning) and the
//! `meloppr-bench` crate for the experiment harness that regenerates
//! every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use meloppr_core as core;
pub use meloppr_fpga as fpga;
pub use meloppr_graph as graph;

/// The unified query API (re-export of [`meloppr_core::backend`]).
pub use meloppr_core::backend;

/// The deadline-aware serving front-end (re-export of
/// [`meloppr_core::server`]): [`PprServer`], the length-prefixed wire
/// protocol, the bounded EDF queue, and serving telemetry.
pub use meloppr_core::server;

pub use meloppr_core::{
    build_index, exact_ppr, exact_top_k, format_bytes, parse_byte_size, precision_at_k,
    AdmissionPolicy, BackendCaps, BackendError, BackendKind, BallIndex, BallStore, BatchExecutor,
    BatchOutcome, BatchStats, CacheBudget, CacheConsumer, CacheStats, CachedBall, CompactBall,
    ConcurrentSubgraphCache, ConsumerStats, CostEstimate, IndexBuildReport, MelopprEngine,
    MelopprOutcome, MelopprParams, PprBackend, PprParams, PprServer, PrecisionClass, QueryBudget,
    QueryOutcome, QueryRequest, QueryStats, QueryWorkspace, Ranking, ResidualPolicy, Route, Router,
    SelectionStrategy, ServerConfig, SubgraphCache, TelemetrySnapshot, WorkspacePool,
};
pub use meloppr_fpga::{AcceleratorConfig, FpgaHybrid, HybridConfig, HybridMeloppr};
pub use meloppr_graph::{
    bfs_ball, CsrGraph, ExtractScratch, GraphBuilder, GraphView, NodeId, Subgraph,
};
