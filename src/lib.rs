//! # MeLoPPR — memory-efficient, low-latency Personalized PageRank
//!
//! A from-scratch Rust reproduction of *"MeLoPPR: Software/Hardware
//! Co-design for Memory-efficient Low-latency Personalized PageRank"*
//! (Li, Chen, Zirnheld, Li, Hao — DAC 2021, arXiv:2104.09616).
//!
//! This facade crate re-exports the three library layers so applications
//! can depend on a single crate:
//!
//! * [`graph`] ([`meloppr_graph`]) — CSR graphs, BFS ball extraction,
//!   sub-graphs, generators (including synthetic stand-ins for the
//!   paper's six SNAP evaluation graphs) and SNAP edge-list I/O;
//! * [`core`] ([`meloppr_core`]) — the MeLoPPR algorithm: graph
//!   diffusion, stage/linear decomposition, sparsity-driven selection,
//!   baselines, precision and memory models;
//! * [`fpga`] ([`meloppr_fpga`]) — the cycle-approximate CPU+FPGA
//!   accelerator simulator (fixed-point PEs, conflict scheduler, BRAM
//!   tables, KC705 resource model).
//!
//! The most commonly used items are also re-exported at the crate root.
//!
//! ## Quick start
//!
//! ```
//! use meloppr::{MelopprEngine, MelopprParams, PprParams, SelectionStrategy};
//! use meloppr::graph::generators;
//!
//! # fn main() -> Result<(), meloppr::core::PprError> {
//! // Who should node 0 of the karate club follow?
//! let g = generators::karate_club();
//! let params = MelopprParams::two_stage(
//!     PprParams::new(0.85, 4, 5)?,
//!     2,
//!     2,
//!     SelectionStrategy::TopFraction(0.3),
//! )?;
//! let engine = MelopprEngine::new(&g, params)?;
//! let outcome = engine.query(0)?;
//! for (node, score) in &outcome.ranking {
//!     println!("node {node}: {score:.4}");
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable scenarios (recommender,
//! accelerated queries, precision sweeps, edge-device planning) and the
//! `meloppr-bench` crate for the experiment harness that regenerates
//! every table and figure of the paper.

#![warn(missing_docs)]

pub use meloppr_core as core;
pub use meloppr_fpga as fpga;
pub use meloppr_graph as graph;

pub use meloppr_core::{
    exact_ppr, exact_top_k, local_ppr, parallel_query, precision_at_k, MelopprEngine,
    MelopprOutcome, MelopprParams, PprParams, Ranking, ResidualPolicy, SelectionStrategy,
};
pub use meloppr_fpga::{AcceleratorConfig, HybridConfig, HybridMeloppr};
pub use meloppr_graph::{bfs_ball, CsrGraph, GraphBuilder, GraphView, NodeId, Subgraph};
