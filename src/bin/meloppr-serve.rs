//! `meloppr-serve` — a long-lived PPR serving daemon.
//!
//! This binary holds the workspace's only `unsafe` (the raw POSIX
//! `signal(2)` declaration in its `signals` module); `deny` rather than
//! `forbid` so that one module can opt back in with a reviewed `allow`.
//!
//! ```text
//! meloppr-serve <graph> [--listen ADDR] [--workers N] [--queue N]
//!               [--deadline-ms X] [--k K] [--length L] [--alpha A]
//!               [--stages a,b,..] [--ratio R] [--walks W]
//!               [--cache-capacity N] [--ball-index F]
//!               [--precision exact|f32|qN] [--calibration-file F]
//! ```
//!
//! `<graph>` is an edge-list file path or `corpus:<G1..G6>[:scale]`,
//! exactly as in `meloppr-cli`. The daemon builds the five-backend
//! self-calibrating `Router` (with a shared sub-graph cache on the
//! staged backend), binds a TCP listener, and serves the length-prefixed
//! line protocol of `meloppr::server` until `SIGTERM`/`SIGINT` or a
//! `SHUTDOWN` request.
//!
//! Every request is scheduled under a deadline (`--deadline-ms` default
//! for requests that do not carry their own): late-risk queries route to
//! cheaper backends or degraded plans, unmeetable ones fail fast with a
//! typed rejection, and when the bounded queue (depth `--queue`)
//! saturates, the request with the most deadline slack is shed. Before
//! rejecting, admission walks the precision ladder (`exact` → `f32` →
//! `q16`): a deadline the staged backend cannot make at 8-byte scores
//! may still be met with narrower arithmetic, and the `OK` frame
//! reports the rung each query executed at. `--precision` sets the
//! deployment-wide default rung for requests that carry none.
//!
//! `--ball-index F` attaches a persisted ball index (built offline with
//! `meloppr-cli index`) as the shared cache's cold tier: a RAM miss is
//! served with one positioned read and a compact decode instead of a
//! live BFS over the graph, falling back to BFS when the index lacks
//! the node or depth. A missing file boots cold silently; a corrupt,
//! truncated or version-mismatched one warns and boots cold — the
//! daemon never refuses to start over cold-tier state, exactly like
//! calibration.
//!
//! `--calibration-file F` makes the router's learned state persistent:
//! loaded at startup (missing file = silent first boot; corrupt file =
//! warn and continue) and saved back at shutdown, so a restarted daemon
//! routes its very first requests with the previous run's calibrated
//! latency EWMAs and warm cache hit-rate estimates.
//!
//! On shutdown the final telemetry snapshot (latency p50/p95/p99, queue
//! high-water, shed/degraded/deadline-missed counters, per-backend route
//! counts) is printed to stderr.

#![deny(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use meloppr::backend::{persist, ExactPower, LocalPpr, Meloppr, MonteCarlo};
use meloppr::graph::edge_list::{read_edge_list_file, EdgeListOptions};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::graph::CsrGraph;
use meloppr::server::{PprServer, ServerConfig};
use meloppr::{
    AcceleratorConfig, BallIndex, CacheBudget, ConcurrentSubgraphCache, FpgaHybrid, HybridConfig,
    MelopprParams, PprParams, PrecisionClass, Router, SelectionStrategy,
};

const USAGE: &str = "usage:
  meloppr-serve <graph> [--listen ADDR] [--workers N] [--queue N] \\
                [--deadline-ms X] [--k K] [--length L] [--alpha A] \\
                [--stages a,b,..] [--ratio R] [--walks W] \\
                [--cache-capacity N] [--ball-index F] \\
                [--precision exact|f32|qN] [--calibration-file F]

  <graph> = an edge-list file path, or corpus:<G1..G6>[:scale]
  --listen ADDR   = bind address (default 127.0.0.1:7737; port 0 picks one)
  --workers N     = queue-draining worker threads (default 2)
  --queue N       = bounded request-queue depth; beyond it the request
                    with the most deadline slack is shed (default 64)
  --deadline-ms X = default per-request deadline for QUERY frames that
                    carry no deadline_ms (default 100)
  --cache-capacity N = shared sub-graph cache budget in balls (default 1024)
  --ball-index F  = persisted ball index (meloppr-cli index) attached as
                    the shared cache's cold tier: RAM misses are served
                    by one positioned read instead of a BFS; corrupt or
                    mismatched files warn and boot cold
  --precision     = default score-arithmetic rung for QUERY frames that
                    carry no precision= token: exact (f64, the default),
                    f32, or qN (Q-format fixed point, e.g. q16)
  --calibration-file F = load learned router state at startup, save at
                    shutdown (corrupt files are ignored with a warning)";

/// Set by the signal handler; polled by the monitor thread.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

// The one `unsafe` in the workspace lives in this module (every lib
// crate carries `#![forbid(unsafe_code)]`); the binary denies it so any
// new site needs an explicit, reviewed `allow`.
#[cfg(unix)]
#[allow(unsafe_code)]
mod signals {
    use super::SIGNALLED;

    // The container has no libc crate; declare the tiny slice of POSIX
    // we need directly.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one relaxed store.
        SIGNALLED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Routes SIGINT/SIGTERM to the `SIGNALLED` flag.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        // SAFETY: `signal(2)` is called with a valid signal number and a
        // handler that is a proper `extern "C" fn(i32)` (the cast chain
        // only reinterprets the fn pointer as the usize ABI expects).
        // The handler body is async-signal-safe — a single relaxed
        // atomic store, no allocation, no locks. `signal`'s return value
        // (the previous handler) is deliberately discarded; we never
        // restore it because the flag stays armed for process lifetime.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
}

struct ServeArgs {
    graph_spec: String,
    listen: String,
    workers: usize,
    queue: usize,
    deadline_ms: f64,
    k: usize,
    length: usize,
    alpha: f64,
    stages: Vec<usize>,
    ratio: f64,
    walks: usize,
    cache_capacity: usize,
    ball_index: Option<String>,
    precision: Option<PrecisionClass>,
    calibration_file: Option<String>,
}

fn parse_args(mut args: Vec<String>) -> Result<ServeArgs, String> {
    if args.is_empty() {
        return Err("missing graph specification".into());
    }
    let mut out = ServeArgs {
        graph_spec: args.remove(0),
        listen: "127.0.0.1:7737".into(),
        workers: 2,
        queue: 64,
        deadline_ms: 100.0,
        k: 10,
        length: 6,
        alpha: 0.85,
        stages: vec![3, 3],
        ratio: 0.05,
        walks: 10_000,
        cache_capacity: 1024,
        ball_index: None,
        precision: None,
        calibration_file: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        macro_rules! parse {
            ($flag:literal) => {
                value($flag)?
                    .parse()
                    .map_err(|e| format!(concat!($flag, ": {}"), e))?
            };
        }
        match arg.as_str() {
            "--listen" => out.listen = value("--listen")?.clone(),
            "--workers" => out.workers = parse!("--workers"),
            "--queue" => out.queue = parse!("--queue"),
            "--deadline-ms" => out.deadline_ms = parse!("--deadline-ms"),
            "--k" => out.k = parse!("--k"),
            "--length" => out.length = parse!("--length"),
            "--alpha" => out.alpha = parse!("--alpha"),
            "--ratio" => out.ratio = parse!("--ratio"),
            "--walks" => out.walks = parse!("--walks"),
            "--cache-capacity" => out.cache_capacity = parse!("--cache-capacity"),
            "--ball-index" => out.ball_index = Some(value("--ball-index")?.clone()),
            "--precision" => {
                let class: PrecisionClass = parse!("--precision");
                class.validate().map_err(|e| format!("--precision: {e}"))?;
                out.precision = Some(class);
            }
            "--stages" => {
                out.stages = value("--stages")?
                    .split(',')
                    .map(|s| s.parse::<usize>().map_err(|e| format!("--stages: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--calibration-file" => {
                out.calibration_file = Some(value("--calibration-file")?.clone())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.workers == 0 {
        return Err("--workers must be >= 1".into());
    }
    if out.queue == 0 {
        return Err("--queue must be >= 1".into());
    }
    if out.cache_capacity == 0 {
        return Err("--cache-capacity must be >= 1".into());
    }
    Ok(out)
}

fn load_graph(spec: &str) -> Result<CsrGraph, String> {
    if let Some(rest) = spec.strip_prefix("corpus:") {
        let mut parts = rest.split(':');
        let id = parts.next().unwrap_or_default();
        let paper = PaperGraph::ALL
            .into_iter()
            .find(|p| p.id().eq_ignore_ascii_case(id))
            .ok_or_else(|| format!("unknown corpus graph {id:?} (use G1..G6)"))?;
        let scale: f64 = match parts.next() {
            Some(s) => s.parse().map_err(|e| format!("bad scale {s:?}: {e}"))?,
            None => 1.0,
        };
        if (scale - 1.0).abs() < f64::EPSILON {
            paper.generate(42)
        } else {
            paper.generate_scaled(scale, 42)
        }
        .map_err(|e| e.to_string())
    } else {
        let graph = read_edge_list_file(spec, EdgeListOptions::default())
            .map(|parsed| parsed.graph)
            .map_err(|e| format!("reading {spec:?}: {e}"))?;
        // A daemon must not serve queries over a structurally broken
        // graph (the zero-allocation hot paths index it unchecked):
        // re-check the CSR invariants at this trust boundary and refuse
        // to boot with the typed reason.
        graph
            .validate()
            .map_err(|e| format!("rejecting {spec:?}: {}", meloppr::core::PprError::from(e)))?;
        Ok(graph)
    }
}

/// The daemon's five-backend self-calibrating router, shared cache on
/// the staged backend.
fn build_router<'g>(g: &'g CsrGraph, args: &ServeArgs) -> Result<Router<'g>, String> {
    let err = |e: meloppr::core::PprError| e.to_string();
    let ppr = PprParams::new(args.alpha, args.length, args.k).map_err(err)?;
    let staged = MelopprParams {
        ppr,
        stages: args.stages.clone(),
        selection: SelectionStrategy::TopFraction(args.ratio),
        ..MelopprParams::paper_defaults()
    };
    staged.validate().map_err(err)?;
    let hybrid_config = HybridConfig {
        accel: AcceleratorConfig {
            parallelism: 16,
            ..AcceleratorConfig::default()
        },
        ..HybridConfig::default()
    };
    let mut cache = ConcurrentSubgraphCache::with_budget(CacheBudget::entries(args.cache_capacity));
    if let Some(path) = &args.ball_index {
        match BallIndex::load(Path::new(path)) {
            Ok(Some(index)) => {
                eprintln!(
                    "meloppr-serve: ball index cold tier attached from {path} \
                     (depth {}, {} nodes)",
                    index.depth(),
                    index.num_nodes()
                );
                cache = cache.with_cold_tier(Arc::new(index));
            }
            // `load` already warned for corrupt/mismatched files; a
            // missing file is a silent cold boot. The daemon always
            // starts — cold-tier state is never worth refusing to serve.
            Ok(None) => {}
            Err(e) => return Err(format!("reading ball index {path:?}: {e}")),
        }
    }
    let meloppr_backend = Meloppr::new(g, staged.clone())
        .map_err(err)?
        .with_shared_cache(Arc::new(cache));
    let mut router = Router::new()
        .with_backend(Box::new(ExactPower::new(g, ppr).map_err(err)?))
        .with_backend(Box::new(LocalPpr::new(g, ppr).map_err(err)?))
        .with_backend(Box::new(
            MonteCarlo::new(g, ppr, args.walks, 42).map_err(err)?,
        ))
        .with_backend(Box::new(meloppr_backend))
        .with_backend(Box::new(
            FpgaHybrid::new(g, staged, hybrid_config).map_err(|e| e.to_string())?,
        ))
        .with_self_calibration(true);
    router.prepare().map_err(err)?;
    Ok(router)
}

fn run() -> Result<(), String> {
    let args = parse_args(std::env::args().skip(1).collect())?;
    let graph = load_graph(&args.graph_spec)?;
    eprintln!(
        "meloppr-serve: graph {} ({} nodes, {} edges)",
        args.graph_spec,
        graph.num_nodes(),
        graph.num_edges()
    );

    let router = build_router(&graph, &args)?;
    if let Some(path) = &args.calibration_file {
        match persist::load_state(&router, Path::new(path)) {
            Ok(true) => eprintln!("meloppr-serve: calibration restored from {path}"),
            Ok(false) => {}
            Err(e) => return Err(format!("reading calibration file {path:?}: {e}")),
        }
    }

    let config = ServerConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        default_deadline_ms: args.deadline_ms,
        default_precision: args.precision,
        ..ServerConfig::default()
    };
    let server =
        PprServer::bind(&router, config, args.listen.as_str()).map_err(|e| e.to_string())?;
    eprintln!(
        "meloppr-serve: listening on {} ({} workers, queue {}, default deadline {} ms, \
         default precision {})",
        server.local_addr(),
        args.workers,
        args.queue,
        args.deadline_ms,
        args.precision.unwrap_or_default()
    );

    signals::install();
    std::thread::scope(|scope| {
        // Signal monitor: turn SIGTERM/SIGINT into a clean shutdown. The
        // thread also exits when the server stops for any other reason
        // (e.g. a SHUTDOWN request), so the scope never hangs.
        scope.spawn(|| {
            while !SIGNALLED.load(Ordering::Relaxed) && !server.is_shutdown() {
                std::thread::sleep(Duration::from_millis(50));
            }
            server.shutdown();
        });
        server.serve().map_err(|e| e.to_string())
    })?;

    let snapshot = server.telemetry();
    eprintln!("{snapshot}");
    if let Some(path) = &args.calibration_file {
        persist::save_state(&router, Path::new(path))
            .map_err(|e| format!("writing calibration file {path:?}: {e}"))?;
        eprintln!("meloppr-serve: calibration saved to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
