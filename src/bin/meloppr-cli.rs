//! `meloppr-cli` — run PPR queries from the command line.
//!
//! ```text
//! meloppr-cli info   <graph>
//! meloppr-cli query  <graph> --seed-node N [--k K] [--length L]
//!                    [--stages a,b,..] [--ratio R] [--alpha A] [--fpga]
//! meloppr-cli exact  <graph> --seed-node N [--k K] [--length L] [--alpha A]
//! ```
//!
//! `<graph>` is either a SNAP-style edge-list file path, or
//! `corpus:<G1..G6>[:scale]` for the paper stand-ins
//! (e.g. `corpus:G3:0.1`). All randomness is seeded; runs are
//! reproducible.

use std::process::ExitCode;

use meloppr::core::precision::precision_at_k;
use meloppr::graph::degree::degree_stats;
use meloppr::graph::edge_list::{read_edge_list_file, EdgeListOptions};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::graph::{components, CsrGraph};
use meloppr::{
    exact_top_k, AcceleratorConfig, HybridConfig, HybridMeloppr, MelopprEngine, MelopprParams,
    NodeId, PprParams, SelectionStrategy,
};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  meloppr-cli info  <graph>
  meloppr-cli query <graph> --seed-node N [--k K] [--length L] \\
                    [--stages a,b,..] [--ratio R] [--alpha A] [--fpga]
  meloppr-cli exact <graph> --seed-node N [--k K] [--length L] [--alpha A]

  <graph> = an edge-list file path, or corpus:<G1..G6>[:scale]";

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err("missing command".into());
    }
    let command = args.remove(0);
    if args.is_empty() {
        return Err("missing graph specification".into());
    }
    let graph_spec = args.remove(0);
    let graph = load_graph(&graph_spec)?;

    match command.as_str() {
        "info" => info(&graph_spec, &graph),
        "query" => query(&graph, &args, false),
        "exact" => query(&graph, &args, true),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_graph(spec: &str) -> Result<CsrGraph, String> {
    if let Some(rest) = spec.strip_prefix("corpus:") {
        let mut parts = rest.split(':');
        let id = parts.next().unwrap_or_default();
        let paper = PaperGraph::ALL
            .into_iter()
            .find(|p| p.id().eq_ignore_ascii_case(id))
            .ok_or_else(|| format!("unknown corpus graph {id:?} (use G1..G6)"))?;
        let scale: f64 = match parts.next() {
            Some(s) => s
                .parse()
                .map_err(|e| format!("bad scale {s:?}: {e}"))?,
            None => 1.0,
        };
        let g = if (scale - 1.0).abs() < f64::EPSILON {
            paper.generate(42)
        } else {
            paper.generate_scaled(scale, 42)
        }
        .map_err(|e| e.to_string())?;
        Ok(g)
    } else {
        let parsed = read_edge_list_file(spec, EdgeListOptions::default())
            .map_err(|e| format!("reading {spec:?}: {e}"))?;
        Ok(parsed.graph)
    }
}

fn info(spec: &str, g: &CsrGraph) -> Result<(), String> {
    let stats = degree_stats(g);
    let (_, components) = components::connected_components(g);
    let (largest, _) = components::largest_component(g);
    println!("graph: {spec}");
    println!("  nodes:              {}", g.num_nodes());
    println!("  edges:              {}", g.num_edges());
    println!("  degree min/med/max: {}/{}/{}", stats.min, stats.median, stats.max);
    println!("  mean degree:        {:.2}", stats.mean);
    println!("  isolated nodes:     {}", stats.isolated);
    println!("  components:         {components} (largest: {largest})");
    Ok(())
}

struct QueryArgs {
    seed: NodeId,
    k: usize,
    length: usize,
    alpha: f64,
    stages: Vec<usize>,
    ratio: f64,
    fpga: bool,
}

fn parse_query_args(args: &[String]) -> Result<QueryArgs, String> {
    let mut out = QueryArgs {
        seed: u32::MAX,
        k: 10,
        length: 6,
        alpha: 0.85,
        stages: vec![3, 3],
        ratio: 0.05,
        fpga: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed-node" => {
                out.seed = value("--seed-node")?
                    .parse()
                    .map_err(|e| format!("--seed-node: {e}"))?
            }
            "--k" => out.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--length" => {
                out.length = value("--length")?
                    .parse()
                    .map_err(|e| format!("--length: {e}"))?
            }
            "--alpha" => {
                out.alpha = value("--alpha")?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?
            }
            "--stages" => {
                out.stages = value("--stages")?
                    .split(',')
                    .map(|s| s.parse::<usize>().map_err(|e| format!("--stages: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--ratio" => {
                out.ratio = value("--ratio")?
                    .parse()
                    .map_err(|e| format!("--ratio: {e}"))?
            }
            "--fpga" => out.fpga = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.seed == u32::MAX {
        return Err("--seed-node is required".into());
    }
    Ok(out)
}

fn query(g: &CsrGraph, args: &[String], exact_only: bool) -> Result<(), String> {
    let qa = parse_query_args(args)?;
    let ppr = PprParams::new(qa.alpha, qa.length, qa.k).map_err(|e| e.to_string())?;

    if exact_only {
        let ranking = exact_top_k(g, qa.seed, &ppr).map_err(|e| e.to_string())?;
        println!("exact top-{} from node {} (L = {}):", qa.k, qa.seed, qa.length);
        for (rank, (node, score)) in ranking.iter().enumerate() {
            println!("  {:>3}. node {node:>8}  score {score:.6}", rank + 1);
        }
        return Ok(());
    }

    let params = MelopprParams {
        ppr,
        stages: qa.stages.clone(),
        selection: SelectionStrategy::TopFraction(qa.ratio),
        ..MelopprParams::paper_defaults()
    };
    params.validate().map_err(|e| e.to_string())?;
    let exact = exact_top_k(g, qa.seed, &ppr).map_err(|e| e.to_string())?;

    if qa.fpga {
        let config = HybridConfig {
            accel: AcceleratorConfig {
                parallelism: 16,
                ..AcceleratorConfig::default()
            },
            ..HybridConfig::default()
        };
        let engine = HybridMeloppr::new(g, params, config).map_err(|e| e.to_string())?;
        let outcome = engine.query(qa.seed).map_err(|e| e.to_string())?;
        println!(
            "MeLoPPR-FPGA top-{} from node {} (stages {:?}, ratio {}, P = 16):",
            qa.k, qa.seed, qa.stages, qa.ratio
        );
        for (rank, (node, score)) in outcome.ranking.iter().enumerate() {
            println!("  {:>3}. node {node:>8}  score {score:.6}", rank + 1);
        }
        println!(
            "precision vs exact: {:.1}%   simulated latency: {:.3} ms (BFS {:.0}%)",
            precision_at_k(&outcome.ranking, &exact, qa.k) * 100.0,
            outcome.latency.total_ms(),
            outcome.latency.bfs_fraction() * 100.0
        );
    } else {
        let engine = MelopprEngine::new(g, params).map_err(|e| e.to_string())?;
        let outcome = engine.query(qa.seed).map_err(|e| e.to_string())?;
        println!(
            "MeLoPPR top-{} from node {} (stages {:?}, ratio {}):",
            qa.k, qa.seed, qa.stages, qa.ratio
        );
        for (rank, (node, score)) in outcome.ranking.iter().enumerate() {
            println!("  {:>3}. node {node:>8}  score {score:.6}", rank + 1);
        }
        println!(
            "precision vs exact: {:.1}%   diffusions: {}   peak task bytes: {}",
            precision_at_k(&outcome.ranking, &exact, qa.k) * 100.0,
            outcome.stats.total_diffusions,
            outcome.stats.peak_task_memory.total()
        );
    }
    Ok(())
}
