//! `meloppr-cli` — run PPR queries from the command line.
//!
//! ```text
//! meloppr-cli info   <graph>
//! meloppr-cli index  <graph> --out F [--index-depth D]
//! meloppr-cli query  <graph> (--seed-node N | --batch-file F) [--k K] [--length L]
//!                    [--stages a,b,..] [--ratio R] [--alpha A]
//!                    [--backend auto|exact|local|mc|meloppr|fpga] [--fpga]
//!                    [--walks W] [--threads T]
//!                    [--cache-shared] [--cache-capacity N] [--cache-bytes SIZE]
//!                    [--cache-admission always|max-nodes:N|freq:N|tinylfu]
//!                    [--cache-window N] [--ball-index F]
//!                    [--max-latency-ms X] [--max-memory-kb X]
//!                    [--budget-memory SIZE] [--min-precision P]
//!                    [--precision exact|f32|qN] [--calibration-file F]
//! meloppr-cli exact  <graph> --seed-node N [--k K] [--length L] [--alpha A]
//! ```
//!
//! `<graph>` is either a SNAP-style edge-list file path, or
//! `corpus:<G1..G6>[:scale]` for the paper stand-ins
//! (e.g. `corpus:G3:0.1`). All randomness is seeded; runs are
//! reproducible.
//!
//! Queries go through the unified `PprBackend` API. `--backend auto`
//! (the default) registers every solver in a `Router` and lets the
//! budget flags decide; naming a backend pins it.
//!
//! `--batch-file F` reads whitespace-separated seed nodes (with `#`
//! comments) from `F` and serves the whole batch, printing aggregate
//! batch statistics. With a pinned backend the batch runs through the
//! `BatchExecutor` — `--threads` sets the worker count, one reusable
//! query workspace per worker. With `--backend auto` each request is
//! routed individually (sequentially; `--threads` then only sets the
//! staged backend's intra-query parallelism).
//!
//! `--cache-shared` attaches a concurrent sub-graph cache to the staged
//! `meloppr` backend: all batch workers share one cache, hot balls are
//! extracted once, and the batch report includes the backend's
//! consumer-attributed hit/extraction counters (exactly this batch's
//! lookups, even if other consumers share the cache). The cache budget
//! is byte-denominated with `--cache-bytes 64MiB`-style suffixed sizes
//! (`KiB`/`MiB`/`GiB`, or decimal `KB`/`MB`/`GB`), entry-denominated
//! with `--cache-capacity N`, or both at once; without either, the
//! default is 1024 balls. `--cache-admission` sets the admission policy
//! (`always` | `max-nodes:N` | `freq:N` | `tinylfu`) so giant one-off
//! balls don't evict hot residents, and `--cache-window` sets the
//! sliding window (lookups) of the hit rate that routing estimates
//! discount BFS by.
//!
//! `meloppr-cli index` builds the **persisted ball index** offline: one
//! BFS ball per node at `--index-depth` (default 3, the default stage
//! depth), encoded in the compact cached-ball wire layout behind a
//! versioned, CRC-checksummed footer. `--ball-index F` then attaches
//! the file as the shared cache's cold tier: a RAM miss is served with
//! one positioned read and a compact decode instead of a live BFS
//! (falling back to BFS when the index lacks the node or depth). A
//! missing index file boots cold silently; a corrupt, truncated or
//! version-mismatched one warns and boots cold, exactly like
//! calibration state.
//!
//! `--budget-memory 256KiB` attaches an **enforced** per-query working
//! set budget (`QueryBudget::max_memory_bytes`): the staged backend
//! runs over-budget balls as frontier-contiguous segments at full
//! effective depth (shrinking depth only at the unsatisfiable floor),
//! and the report counts queries that had to degrade. `--max-memory-kb`
//! is the legacy spelling of the same bound.
//!
//! `--precision exact|f32|q16` requests a score-arithmetic rung of the
//! staged backend's precision ladder: `exact` (f64, the default), `f32`
//! (4-byte floats), or `qN` (Q-format fixed point with `N` fractional
//! bits, the accelerator's integer domain on the host). Narrower rungs
//! shrink the modelled working set — under `--budget-memory` the staged
//! planner degrades the rung *before* it shrinks ball depth — and the
//! report shows the class each query actually executed at.
//!
//! `--calibration-file F` (with `--backend auto`) makes the router's
//! learned state persistent: latency-calibration EWMAs and cache
//! hit-rate windows are loaded from `F` before serving and saved back
//! after, so a fresh process routes with the previous run's calibration
//! instead of re-learning from the analytic models. A missing file is a
//! silent first boot; a corrupt or version-mismatched file is ignored
//! with a warning.

#![forbid(unsafe_code)]
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use meloppr::backend::{persist, ExactPower, LocalPpr, Meloppr, MonteCarlo};
use meloppr::core::precision::precision_at_k;
use meloppr::graph::degree::degree_stats;
use meloppr::graph::edge_list::{read_edge_list_file, EdgeListOptions};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::graph::{components, CsrGraph};
use meloppr::{
    build_index, exact_top_k, format_bytes, parse_byte_size, AcceleratorConfig, BatchExecutor,
    BatchStats, FpgaHybrid, HybridConfig, MelopprParams, NodeId, PprBackend, PprParams,
    QueryRequest, Router, SelectionStrategy,
};
use meloppr::{AdmissionPolicy, BallIndex, CacheBudget, ConcurrentSubgraphCache, PrecisionClass};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  meloppr-cli info  <graph>
  meloppr-cli index <graph> --out F [--index-depth D]
  meloppr-cli query <graph> (--seed-node N | --batch-file F) [--k K] [--length L] \\
                    [--stages a,b,..] [--ratio R] [--alpha A] \\
                    [--backend auto|exact|local|mc|meloppr|fpga] [--fpga] \\
                    [--walks W] [--threads T] \\
                    [--cache-shared] [--cache-capacity N] [--cache-bytes SIZE] \\
                    [--cache-admission always|max-nodes:N|freq:N|tinylfu] \\
                    [--cache-window N] [--ball-index F] \\
                    [--max-latency-ms X] [--max-memory-kb X] \\
                    [--budget-memory SIZE] [--min-precision P] \\
                    [--precision exact|f32|qN] [--calibration-file F]
  meloppr-cli exact <graph> --seed-node N [--k K] [--length L] [--alpha A]

  <graph> = an edge-list file path, or corpus:<G1..G6>[:scale]
  --batch-file F = whitespace-separated seed nodes ('#' comments);
                   pinned backends batch with --threads workers,
                   --backend auto routes each request individually
  --cache-shared = share one concurrent sub-graph cache across all
                   workers of the staged meloppr backend
  --cache-capacity N / --cache-bytes SIZE = the shared cache's budget in
                   balls and/or bytes (SIZE takes KiB/MiB/GiB or
                   KB/MB/GB suffixes, e.g. 64MiB); default 1024 balls
  --cache-admission = ball admission policy: always (default),
                   max-nodes:N (never admit balls over N nodes),
                   freq:N (admit over-budget balls on second sighting),
                   or tinylfu (admit only when the candidate's sketch
                   frequency beats the would-be eviction victim's)
  --cache-window = sliding window (lookups) for the hit rate that
                   routing estimates discount BFS by (default 256)
  --ball-index F = attach a persisted ball index (built with the index
                   command) as the shared cache's cold tier: RAM misses
                   are served by one positioned read instead of a BFS;
                   requires --cache-shared. Corrupt or mismatched files
                   warn and boot cold
  --out F / --index-depth D = (index command) write the ball index for
                   every node at depth D (default 3) to F
  --budget-memory SIZE = enforced per-query working-set budget (the
                   staged backend degrades deterministically to fit);
                   --max-memory-kb X is the same bound in KiB
  --precision = score-arithmetic rung for the staged backend: exact
                   (f64, default), f32, or qN (Q-format fixed point,
                   N fractional bits, e.g. q16); narrower rungs shrink
                   the working set before ball depth does
  --calibration-file F = persist the auto router's learned state (latency
                   EWMAs, cache hit-rate windows): loaded before serving,
                   saved after; corrupt files are ignored with a warning";

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err("missing command".into());
    }
    let command = args.remove(0);
    if args.is_empty() {
        return Err("missing graph specification".into());
    }
    let graph_spec = args.remove(0);
    let graph = load_graph(&graph_spec)?;

    match command.as_str() {
        "info" => info(&graph_spec, &graph),
        "index" => index(&graph_spec, &graph, &args),
        "query" => query(&graph, &args, false),
        "exact" => query(&graph, &args, true),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_graph(spec: &str) -> Result<CsrGraph, String> {
    if let Some(rest) = spec.strip_prefix("corpus:") {
        let mut parts = rest.split(':');
        let id = parts.next().unwrap_or_default();
        let paper = PaperGraph::ALL
            .into_iter()
            .find(|p| p.id().eq_ignore_ascii_case(id))
            .ok_or_else(|| format!("unknown corpus graph {id:?} (use G1..G6)"))?;
        let scale: f64 = match parts.next() {
            Some(s) => s.parse().map_err(|e| format!("bad scale {s:?}: {e}"))?,
            None => 1.0,
        };
        let g = if (scale - 1.0).abs() < f64::EPSILON {
            paper.generate(42)
        } else {
            paper.generate_scaled(scale, 42)
        }
        .map_err(|e| e.to_string())?;
        Ok(g)
    } else {
        let parsed = read_edge_list_file(spec, EdgeListOptions::default())
            .map_err(|e| format!("reading {spec:?}: {e}"))?;
        // Files are a trust boundary: re-check the CSR invariants so a
        // malformed graph is rejected with the typed reason up front
        // instead of corrupting query results (or panicking) later.
        parsed
            .graph
            .validate()
            .map_err(|e| format!("rejecting {spec:?}: {}", meloppr::core::PprError::from(e)))?;
        Ok(parsed.graph)
    }
}

fn info(spec: &str, g: &CsrGraph) -> Result<(), String> {
    let stats = degree_stats(g);
    let (_, components) = components::connected_components(g);
    let (largest, _) = components::largest_component(g);
    println!("graph: {spec}");
    println!("  nodes:              {}", g.num_nodes());
    println!("  edges:              {}", g.num_edges());
    println!(
        "  degree min/med/max: {}/{}/{}",
        stats.min, stats.median, stats.max
    );
    println!("  mean degree:        {:.2}", stats.mean);
    println!("  isolated nodes:     {}", stats.isolated);
    println!("  components:         {components} (largest: {largest})");
    Ok(())
}

/// The `index` command: build the persisted ball index offline and
/// report what went to disk.
fn index(spec: &str, g: &CsrGraph, args: &[String]) -> Result<(), String> {
    let mut out_path: Option<String> = None;
    let mut depth: u32 = 3;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out_path = Some(value("--out")?.clone()),
            "--index-depth" => {
                depth = value("--index-depth")?
                    .parse()
                    .map_err(|e| format!("--index-depth: {e}"))?;
                if depth == 0 {
                    return Err("--index-depth must be >= 1".into());
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let out_path = out_path.ok_or("--out is required")?;

    let started = std::time::Instant::now();
    let report = build_index(g, depth, Path::new(&out_path))
        .map_err(|e| format!("writing {out_path:?}: {e}"))?;
    println!("ball index for {spec} at depth {depth} -> {out_path}");
    println!(
        "  nodes indexed:      {} ({} skipped)",
        report.nodes_indexed, report.nodes_skipped
    );
    println!("  ball bytes (RAM):   {}", format_bytes(report.ball_bytes));
    println!(
        "  file bytes:         {}",
        format_bytes(report.file_bytes as usize)
    );
    println!(
        "  build time:         {:.2} s",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum BackendChoice {
    Auto,
    Exact,
    Local,
    MonteCarlo,
    Meloppr,
    Fpga,
}

struct QueryArgs {
    seed: NodeId,
    batch_file: Option<String>,
    k: usize,
    length: usize,
    alpha: f64,
    stages: Vec<usize>,
    ratio: f64,
    backend: BackendChoice,
    walks: usize,
    threads: usize,
    cache_shared: bool,
    cache_capacity: Option<usize>,
    cache_bytes: Option<usize>,
    cache_admission: AdmissionPolicy,
    cache_window: usize,
    ball_index: Option<String>,
    max_latency_ms: Option<f64>,
    max_memory_bytes: Option<usize>,
    min_precision: Option<f64>,
    precision: Option<PrecisionClass>,
    calibration_file: Option<String>,
}

impl QueryArgs {
    /// The shared cache's budget: entries and/or bytes as given, 1024
    /// balls when neither flag is set.
    fn cache_budget(&self) -> CacheBudget {
        match (self.cache_capacity, self.cache_bytes) {
            (None, None) => CacheBudget::entries(1024),
            (Some(entries), None) => CacheBudget::entries(entries),
            (None, Some(bytes)) => CacheBudget::bytes(bytes),
            (Some(entries), Some(bytes)) => CacheBudget::entries(entries).with_bytes(bytes),
        }
    }

    fn cache_budget_label(&self) -> String {
        let budget = self.cache_budget();
        match (budget.entries, budget.bytes) {
            (Some(entries), Some(bytes)) => {
                format!("{entries} balls / {}", format_bytes(bytes))
            }
            (None, Some(bytes)) => format_bytes(bytes),
            (Some(entries), None) => format!("{entries} balls"),
            (None, None) => "unbounded".into(),
        }
    }
}

fn parse_query_args(args: &[String]) -> Result<QueryArgs, String> {
    let mut out = QueryArgs {
        seed: u32::MAX,
        batch_file: None,
        k: 10,
        length: 6,
        alpha: 0.85,
        stages: vec![3, 3],
        ratio: 0.05,
        backend: BackendChoice::Auto,
        walks: 10_000,
        threads: 1,
        cache_shared: false,
        cache_capacity: None,
        cache_bytes: None,
        cache_admission: AdmissionPolicy::Always,
        cache_window: 256,
        ball_index: None,
        max_latency_ms: None,
        max_memory_bytes: None,
        min_precision: None,
        precision: None,
        calibration_file: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed-node" => {
                out.seed = value("--seed-node")?
                    .parse()
                    .map_err(|e| format!("--seed-node: {e}"))?
            }
            "--batch-file" => out.batch_file = Some(value("--batch-file")?.clone()),
            "--k" => out.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--length" => {
                out.length = value("--length")?
                    .parse()
                    .map_err(|e| format!("--length: {e}"))?
            }
            "--alpha" => {
                out.alpha = value("--alpha")?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?
            }
            "--stages" => {
                out.stages = value("--stages")?
                    .split(',')
                    .map(|s| s.parse::<usize>().map_err(|e| format!("--stages: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--ratio" => {
                out.ratio = value("--ratio")?
                    .parse()
                    .map_err(|e| format!("--ratio: {e}"))?
            }
            "--backend" => {
                out.backend = match value("--backend")?.as_str() {
                    "auto" => BackendChoice::Auto,
                    "exact" => BackendChoice::Exact,
                    "local" => BackendChoice::Local,
                    "mc" | "monte-carlo" => BackendChoice::MonteCarlo,
                    "meloppr" => BackendChoice::Meloppr,
                    "fpga" => BackendChoice::Fpga,
                    other => {
                        return Err(format!(
                            "unknown backend {other:?} (auto|exact|local|mc|meloppr|fpga)"
                        ))
                    }
                }
            }
            "--fpga" => out.backend = BackendChoice::Fpga,
            "--walks" => {
                out.walks = value("--walks")?
                    .parse()
                    .map_err(|e| format!("--walks: {e}"))?
            }
            "--threads" => {
                out.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--cache-shared" => out.cache_shared = true,
            "--cache-capacity" => {
                let capacity: usize = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?;
                if capacity == 0 {
                    return Err("--cache-capacity must be >= 1".into());
                }
                out.cache_capacity = Some(capacity);
            }
            "--cache-bytes" => {
                out.cache_bytes = Some(
                    parse_byte_size(value("--cache-bytes")?)
                        .map_err(|e| format!("--cache-bytes: {e}"))?,
                )
            }
            "--cache-admission" => {
                out.cache_admission = value("--cache-admission")?
                    .parse()
                    .map_err(|e| format!("--cache-admission: {e}"))?
            }
            "--cache-window" => {
                out.cache_window = value("--cache-window")?
                    .parse()
                    .map_err(|e| format!("--cache-window: {e}"))?;
                if out.cache_window == 0 {
                    return Err("--cache-window must be >= 1".into());
                }
            }
            "--ball-index" => out.ball_index = Some(value("--ball-index")?.clone()),
            "--max-latency-ms" => {
                out.max_latency_ms = Some(
                    value("--max-latency-ms")?
                        .parse()
                        .map_err(|e| format!("--max-latency-ms: {e}"))?,
                )
            }
            "--max-memory-kb" => {
                let kb: usize = value("--max-memory-kb")?
                    .parse()
                    .map_err(|e| format!("--max-memory-kb: {e}"))?;
                out.max_memory_bytes = Some(kb << 10);
            }
            "--budget-memory" => {
                out.max_memory_bytes = Some(
                    parse_byte_size(value("--budget-memory")?)
                        .map_err(|e| format!("--budget-memory: {e}"))?,
                )
            }
            "--min-precision" => {
                out.min_precision = Some(
                    value("--min-precision")?
                        .parse()
                        .map_err(|e| format!("--min-precision: {e}"))?,
                )
            }
            "--precision" => {
                let class: PrecisionClass = value("--precision")?
                    .parse()
                    .map_err(|e| format!("--precision: {e}"))?;
                class.validate().map_err(|e| format!("--precision: {e}"))?;
                out.precision = Some(class);
            }
            "--calibration-file" => {
                out.calibration_file = Some(value("--calibration-file")?.clone())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.seed == u32::MAX && out.batch_file.is_none() {
        return Err("--seed-node or --batch-file is required".into());
    }
    if out.calibration_file.is_some() && out.backend != BackendChoice::Auto {
        return Err(
            "--calibration-file persists the router's learned state: it requires \
             --backend auto"
                .into(),
        );
    }
    if out.cache_shared && !matches!(out.backend, BackendChoice::Meloppr | BackendChoice::Auto) {
        return Err(
            "--cache-shared applies to the staged solver: use --backend meloppr \
             (reports per-batch cache stats) or --backend auto (attaches to the \
             router's meloppr backend)"
                .into(),
        );
    }
    if out.ball_index.is_some() && !out.cache_shared {
        return Err(
            "--ball-index is the shared cache's cold tier: it requires --cache-shared".into(),
        );
    }
    Ok(out)
}

/// Parses a batch file: whitespace-separated node ids, `#` to end of
/// line is a comment.
fn read_batch_seeds(path: &str) -> Result<Vec<NodeId>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or_default();
        for token in line.split_whitespace() {
            seeds.push(
                token
                    .parse::<NodeId>()
                    .map_err(|e| format!("{path}: bad seed {token:?}: {e}"))?,
            );
        }
    }
    if seeds.is_empty() {
        return Err(format!("{path}: no seeds found"));
    }
    Ok(seeds)
}

fn query(g: &CsrGraph, args: &[String], exact_only: bool) -> Result<(), String> {
    let qa = parse_query_args(args)?;
    let ppr = PprParams::new(qa.alpha, qa.length, qa.k).map_err(|e| e.to_string())?;

    if exact_only {
        if qa.batch_file.is_some() || qa.seed == u32::MAX {
            return Err("the exact command takes --seed-node, not --batch-file".into());
        }
        let ranking = exact_top_k(g, qa.seed, &ppr).map_err(|e| e.to_string())?;
        println!(
            "exact top-{} from node {} (L = {}):",
            qa.k, qa.seed, qa.length
        );
        for (rank, (node, score)) in ranking.iter().enumerate() {
            println!("  {:>3}. node {node:>8}  score {score:.6}", rank + 1);
        }
        return Ok(());
    }

    let staged = MelopprParams {
        ppr,
        stages: qa.stages.clone(),
        selection: SelectionStrategy::TopFraction(qa.ratio),
        ..MelopprParams::paper_defaults()
    };
    staged.validate().map_err(|e| e.to_string())?;
    let hybrid_config = HybridConfig {
        accel: AcceleratorConfig {
            parallelism: 16,
            ..AcceleratorConfig::default()
        },
        ..HybridConfig::default()
    };

    // One request. Latency/precision budgets steer --backend auto
    // routing; the memory budget is additionally *enforced* by the
    // staged backend at run time.
    let mut req = QueryRequest::new(qa.seed);
    if let Some(ms) = qa.max_latency_ms {
        req = req.with_max_latency_ms(ms);
    }
    if let Some(bytes) = qa.max_memory_bytes {
        req = req.with_max_memory_bytes(bytes);
    }
    if let Some(p) = qa.min_precision {
        req = req.with_min_precision(p);
    }
    if let Some(class) = qa.precision {
        req = req.with_precision(class);
    }

    let err = |e: meloppr::core::PprError| e.to_string();

    // Batch mode: read seeds, serve the whole batch through the batch
    // executor (pinned backend) or the router (auto), print aggregates.
    if let Some(path) = &qa.batch_file {
        let seeds = read_batch_seeds(path)?;
        let reqs: Vec<QueryRequest> = seeds
            .iter()
            .map(|&s| QueryRequest { seed: s, ..req })
            .collect();
        let workers = qa.threads.max(1);

        let (outcomes, stats, served_by) = if qa.backend == BackendChoice::Auto {
            let router = build_router(g, ppr, staged, hybrid_config, &qa)?;
            load_calibration(&router, &qa)?;
            let started = std::time::Instant::now();
            let outcomes = router.query_batch(&reqs).map_err(err)?;
            let stats = BatchStats::aggregate(&outcomes, started.elapsed());
            save_calibration(&router, &qa)?;
            (outcomes, stats, "router (per-request)".to_string())
        } else {
            // Batch workers own the parallelism; the staged backend runs
            // its intra-query schedule sequentially.
            let (backend, label) = build_pinned(g, ppr, staged, hybrid_config, &qa, 1)?;
            let batch = BatchExecutor::new(workers)
                .map_err(err)?
                .run(backend.as_ref(), &reqs)
                .map_err(err)?;
            (
                batch.outcomes,
                batch.stats,
                format!("{label}, {workers} batch workers"),
            )
        };

        println!(
            "batch of {} queries from {path} via {served_by}:",
            outcomes.len()
        );
        for (seed, outcome) in seeds.iter().zip(&outcomes).take(5) {
            let (top, score) = outcome.ranking.first().copied().unwrap_or((0, 0.0));
            println!("  seed {seed:>8} -> top node {top:>8}  score {score:.6}");
        }
        if outcomes.len() > 5 {
            println!("  ... ({} more)", outcomes.len() - 5);
        }
        println!(
            "wall clock: {:.2} ms   throughput: {:.0} queries/s   mean latency: {:.3} ms",
            stats.wall_clock.as_secs_f64() * 1e3,
            stats.throughput_qps(),
            stats.mean_latency_ms()
        );
        print!(
            "diffusions: {}   bfs edges: {}   peak memory: {} ({} peak task)",
            stats.total_diffusions,
            stats.bfs_edges_scanned,
            format_bytes(stats.peak_memory_bytes),
            format_bytes(stats.peak_task_memory_bytes),
        );
        if stats.random_walk_steps > 0 {
            print!("   walk steps: {}", stats.random_walk_steps);
        }
        println!();
        if qa.max_memory_bytes.is_some() {
            println!(
                "memory budget {}: {} of {} queries degraded to fit (memory_limited)",
                format_bytes(qa.max_memory_bytes.unwrap_or(0)),
                stats.memory_limited_queries,
                stats.queries
            );
        }
        if let Some(cache) = &stats.cache {
            let resident = stats
                .cache_resident_bytes
                .map(format_bytes)
                .unwrap_or_else(|| "?".into());
            println!(
                "shared cache (this batch's own lookups): {} lookups, {} hits + {} shared, \
                 {} extractions, {} admissions rejected ({:.0}% served without BFS); \
                 resident {resident} of budget {}",
                cache.lookups(),
                cache.hits,
                cache.shared,
                cache.extractions,
                cache.rejected_admissions,
                cache.hit_rate() * 100.0,
                qa.cache_budget_label(),
            );
            if qa.ball_index.is_some() {
                println!(
                    "cold tier: {} cold hits ({} read), {} fallbacks to BFS",
                    cache.cold_hits,
                    format_bytes(cache.cold_bytes_read as usize),
                    cache.cold_fallbacks,
                );
            }
        } else if qa.cache_shared {
            println!(
                "shared cache: attached to the router's meloppr backend \
                 (per-batch cache stats are reported only with --backend meloppr)"
            );
        }
        let mix: Vec<String> = stats
            .by_backend
            .iter()
            .map(|(kind, count)| format!("{kind}: {count}"))
            .collect();
        println!("backend mix: {}", mix.join(", "));
        return Ok(());
    }

    let (outcome, served_by) = if qa.backend == BackendChoice::Auto {
        let router = build_router(g, ppr, staged, hybrid_config, &qa)?;
        load_calibration(&router, &qa)?;
        let route = router.select(&req).map_err(err)?;
        let outcome = router.query(&req).map_err(err)?;
        save_calibration(&router, &qa)?;
        (
            outcome,
            format!(
                "{} (routed{})",
                route.kind,
                if route.fits_budget {
                    ""
                } else {
                    ", best effort"
                }
            ),
        )
    } else {
        let (backend, label) = build_pinned(g, ppr, staged, hybrid_config, &qa, qa.threads.max(1))?;
        (backend.query(&req).map_err(err)?, label)
    };

    println!("top-{} from node {} via {served_by}:", qa.k, qa.seed);
    for (rank, (node, score)) in outcome.ranking.iter().enumerate() {
        println!("  {:>3}. node {node:>8}  score {score:.6}", rank + 1);
    }
    let exact = exact_top_k(g, qa.seed, &ppr).map_err(err)?;
    let stats = &outcome.stats;
    print!(
        "precision vs exact: {:.1}%   diffusions: {}   peak memory: {} bytes",
        precision_at_k(&outcome.ranking, &exact, qa.k) * 100.0,
        stats.total_diffusions,
        stats.peak_memory_bytes
    );
    if stats.memory_limited {
        print!("   [memory-limited: degraded to fit the budget]");
    }
    if qa.precision.is_some() || stats.precision_class != PrecisionClass::Exact64 {
        print!("   precision class: {}", stats.precision_class);
    }
    if stats.random_walk_steps > 0 {
        print!("   walk steps: {}", stats.random_walk_steps);
    }
    if let Some(ns) = stats.latency_estimate_ns {
        print!("   simulated latency: {:.3} ms", ns / 1e6);
    }
    println!();
    Ok(())
}

/// Loads persisted router state from `--calibration-file`, if given. A
/// missing file is a silent first boot; corrupt files warn and proceed.
fn load_calibration(router: &Router<'_>, qa: &QueryArgs) -> Result<(), String> {
    let Some(path) = &qa.calibration_file else {
        return Ok(());
    };
    match persist::load_state(router, Path::new(path)) {
        Ok(true) => {
            println!("calibration: restored from {path}");
            Ok(())
        }
        Ok(false) => Ok(()),
        Err(e) => Err(format!("reading calibration file {path:?}: {e}")),
    }
}

/// Saves the router's learned state back to `--calibration-file`, if
/// given.
fn save_calibration(router: &Router<'_>, qa: &QueryArgs) -> Result<(), String> {
    let Some(path) = &qa.calibration_file else {
        return Ok(());
    };
    persist::save_state(router, Path::new(path))
        .map_err(|e| format!("writing calibration file {path:?}: {e}"))
}

/// Builds the shared cache per the cache flags, attaching the
/// `--ball-index` cold tier when one is given. A missing index file
/// boots cold silently; a corrupt or version-mismatched one warns (via
/// `BallIndex::load`) and boots cold.
fn build_shared_cache(qa: &QueryArgs) -> Result<Arc<ConcurrentSubgraphCache>, String> {
    let mut cache =
        ConcurrentSubgraphCache::with_budget(qa.cache_budget()).with_admission(qa.cache_admission);
    if let Some(path) = &qa.ball_index {
        match BallIndex::load(Path::new(path)) {
            Ok(Some(index)) => {
                println!(
                    "ball index: cold tier attached from {path} (depth {}, {} nodes)",
                    index.depth(),
                    index.num_nodes()
                );
                cache = cache.with_cold_tier(Arc::new(index));
            }
            // `load` already warned on stderr for corrupt/mismatched
            // files; a missing file is a silent cold boot.
            Ok(None) => {}
            Err(e) => return Err(format!("reading ball index {path:?}: {e}")),
        }
    }
    Ok(Arc::new(cache))
}

/// Builds the pinned (non-auto) backend named by `--backend` as a
/// `Sync` trait object ready for sequential or batched serving.
fn build_pinned<'g>(
    g: &'g CsrGraph,
    ppr: PprParams,
    staged: MelopprParams,
    hybrid_config: HybridConfig,
    qa: &QueryArgs,
    staged_threads: usize,
) -> Result<(Box<dyn PprBackend + Sync + 'g>, String), String> {
    let err = |e: meloppr::core::PprError| e.to_string();
    Ok(match qa.backend {
        BackendChoice::Exact => (
            Box::new(ExactPower::new(g, ppr).map_err(err)?) as Box<dyn PprBackend + Sync>,
            "exact-power".to_string(),
        ),
        BackendChoice::Local => (
            Box::new(LocalPpr::new(g, ppr).map_err(err)?),
            "local-ppr".to_string(),
        ),
        BackendChoice::MonteCarlo => (
            Box::new(MonteCarlo::new(g, ppr, qa.walks, 42).map_err(err)?),
            format!("monte-carlo ({} walks)", qa.walks),
        ),
        BackendChoice::Meloppr => {
            let backend = Meloppr::new(g, staged)
                .map_err(err)?
                .with_threads(staged_threads)
                .map_err(err)?
                .with_cache_window(qa.cache_window);
            if qa.cache_shared {
                let cache = build_shared_cache(qa)?;
                (
                    Box::new(backend.with_shared_cache(cache)) as Box<dyn PprBackend + Sync>,
                    format!(
                        "meloppr (stages {:?}, ratio {}, shared cache budget {}, \
                         admission {})",
                        qa.stages,
                        qa.ratio,
                        qa.cache_budget_label(),
                        qa.cache_admission
                    ),
                )
            } else {
                (
                    Box::new(backend) as Box<dyn PprBackend + Sync>,
                    format!("meloppr (stages {:?}, ratio {})", qa.stages, qa.ratio),
                )
            }
        }
        BackendChoice::Fpga => (
            Box::new(FpgaHybrid::new(g, staged, hybrid_config).map_err(|e| e.to_string())?),
            "fpga-hybrid (P = 16)".to_string(),
        ),
        BackendChoice::Auto => unreachable!("auto is routed, not pinned"),
    })
}

/// Builds the five-backend router for `--backend auto`.
fn build_router<'g>(
    g: &'g CsrGraph,
    ppr: PprParams,
    staged: MelopprParams,
    hybrid_config: HybridConfig,
    qa: &QueryArgs,
) -> Result<Router<'g>, String> {
    let err = |e: meloppr::core::PprError| e.to_string();
    let mut meloppr_backend = Meloppr::new(g, staged.clone())
        .map_err(err)?
        .with_threads(qa.threads.max(1))
        .map_err(err)?
        .with_cache_window(qa.cache_window);
    if qa.cache_shared {
        // The router's staged backend shares one cache across all the
        // requests it routes there; its estimates discount BFS by the
        // backend consumer's windowed hit rate (and with self-calibration
        // also learn residual latency error).
        meloppr_backend = meloppr_backend.with_shared_cache(build_shared_cache(qa)?);
    }
    Ok(Router::new()
        .with_backend(Box::new(ExactPower::new(g, ppr).map_err(err)?))
        .with_backend(Box::new(LocalPpr::new(g, ppr).map_err(err)?))
        .with_backend(Box::new(
            MonteCarlo::new(g, ppr, qa.walks, 42).map_err(err)?,
        ))
        .with_backend(Box::new(meloppr_backend))
        .with_backend(Box::new(
            FpgaHybrid::new(g, staged, hybrid_config).map_err(|e| e.to_string())?,
        ))
        .with_self_calibration(true))
}
