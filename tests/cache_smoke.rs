//! Cache-effectiveness smoke test — run in release mode by CI alongside
//! the allocation smoke test.
//!
//! The shared sub-graph cache exists for one reason: under skewed real
//! traffic, most queries should skip ball extraction entirely. This test
//! pins that end to end with deterministic work counters (the bench host
//! has one core, so wall clock proves nothing):
//!
//! * a Zipf(1.0) batch of 256 queries over a corpus graph must report at
//!   least 2× fewer ball extractions than queries issued;
//! * `prepare()` warm-up extractions must **not** appear in the first
//!   batch's consumer-attributed miss delta (warming is not demand, so
//!   it must not deflate the hit rate `estimate()` feeds the router);
//! * re-serving the warmed batch must charge **zero** BFS work — hits do
//!   no extraction at all;
//! * shared-cache rankings must be bit-identical to the uncached
//!   sequential path.

use std::sync::Arc;

use meloppr::backend::{BatchExecutor, Meloppr, QueryRequest};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{ConcurrentSubgraphCache, MelopprParams, PprBackend, PprParams, SelectionStrategy};
use meloppr_bench::sample_zipf_queries;

#[test]
fn skewed_batch_extracts_less_than_half_its_queries() {
    let g = PaperGraph::G1Citeseer.generate_scaled(0.3, 42).unwrap();
    // Hot-hub traffic: 256 queries, Zipf(1.0) over the 16 hottest seeds.
    // TopCount(4) bounds the key space (each distinct seed contributes at
    // most 1 stage-one + 4 stage-two balls), making the extraction bound
    // provable rather than statistical.
    let params = MelopprParams {
        ppr: PprParams::new(0.85, 6, 20).unwrap(),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopCount(4),
        ..MelopprParams::paper_defaults()
    };
    let queries = 256usize;
    let mix = sample_zipf_queries(&g, queries, 16, 1.0, 42);
    assert_eq!(mix.len(), queries);
    let reqs: Vec<QueryRequest> = mix.iter().map(|&s| QueryRequest::new(s)).collect();

    // Ground truth: uncached sequential path.
    let uncached = Meloppr::new(&g, params.clone()).unwrap();
    let expected: Vec<_> = reqs.iter().map(|r| uncached.query(r).unwrap()).collect();

    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let mut shared = Meloppr::new(&g, params)
        .unwrap()
        .with_shared_cache(Arc::clone(&cache));

    // Warm up through prepare(): probe-seed balls are extracted, but no
    // lookup is counted anywhere — the consumer's history stays empty.
    shared.prepare().unwrap();
    let warmed = cache.stats();
    assert!(warmed.extractions > 0, "prepare must pre-extract balls");
    assert_eq!(warmed.lookups(), 0, "warming must not count as lookups");
    let consumer = shared.cache_consumer().expect("shared mode has a consumer");
    assert_eq!(
        consumer.stats().lookups(),
        0,
        "warm-up extractions leaked into the consumer's lookup counters"
    );

    let batch = BatchExecutor::new(4).unwrap().run(&shared, &reqs).unwrap();

    // Bit-identical rankings, identical diffusion work.
    for (got, want) in batch.outcomes.iter().zip(&expected) {
        assert_eq!(got.ranking, want.ranking);
        assert_eq!(got.stats.total_diffusions, want.stats.total_diffusions);
    }

    // The headline: ≥2× fewer ball extractions than queries issued.
    let stats = batch.stats.cache.expect("shared cache attached");
    assert!(
        stats.extractions * 2 <= queries as u64,
        "cache ineffective: {} extractions for {queries} queries",
        stats.extractions
    );
    // The per-batch delta is consumer-attributed: it must cover exactly
    // this batch's ball lookups (one per diffusion task), none of the
    // warm-up extractions.
    let task_lookups: usize = batch
        .outcomes
        .iter()
        .map(|o| o.stats.total_diffusions)
        .sum();
    assert_eq!(
        stats.lookups(),
        task_lookups as u64,
        "batch delta must count exactly its own lookups"
    );
    assert_eq!(
        stats.misses, stats.extractions,
        "warm-up extractions must not appear in the batch's miss delta"
    );
    assert_eq!(
        cache.stats().evictions,
        0,
        "capacity must hold the working set"
    );
    assert_eq!(
        cache.stats().extractions,
        cache.len() as u64,
        "singleflight held (warm-ups included)"
    );

    // Hits perform zero BFS work: the warmed batch extracts nothing and
    // scans nothing.
    let again = BatchExecutor::new(4).unwrap().run(&shared, &reqs).unwrap();
    let delta = again.stats.cache.expect("shared cache attached");
    assert_eq!(delta.extractions, 0, "warm batch re-extracted a ball");
    assert_eq!(delta.misses, 0);
    assert_eq!(again.stats.bfs_edges_scanned, 0, "a hit charged BFS work");
    for (got, want) in again.outcomes.iter().zip(&expected) {
        assert_eq!(got.ranking, want.ranking);
    }
}
