//! Property-based tests over randomly generated graphs and parameters
//! (the invariants listed in `DESIGN.md` §4).

use proptest::prelude::*;

use meloppr::core::diffusion::{diffuse, diffuse_from_seed, DiffusionConfig};
use meloppr::core::score_vec::{top_k_dense, top_k_sparse};
use meloppr::graph::generators;
use meloppr::{
    bfs_ball, exact_ppr, GraphView, MelopprEngine, MelopprParams, NodeId, PprParams,
    SelectionStrategy, Subgraph,
};

/// Strategy: a connected-ish random simple graph (n, edge list).
fn arb_graph() -> impl Strategy<Value = meloppr::CsrGraph> {
    (5usize..60, any::<u64>()).prop_map(|(n, seed)| {
        // Spanning-tree-plus-extras keeps every node reachable.
        let extra = n; // n extra edges on top of the n-1 tree edges
        generators::locality_preferential(n, (n - 1) + extra / 2, 0.5, n / 2 + 1, seed)
            .expect("valid generator parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mass_is_conserved(g in arb_graph(), l in 0usize..7, seed_idx in any::<prop::sample::Index>()) {
        let seed = seed_idx.index(g.num_nodes()) as NodeId;
        let config = DiffusionConfig::new(0.85, l).unwrap();
        let out = diffuse_from_seed(&g, seed, config).unwrap();
        let acc: f64 = out.accumulated.iter().sum();
        let res: f64 = out.residual.iter().sum();
        prop_assert!((acc - 1.0).abs() < 1e-9, "accumulated mass {acc}");
        prop_assert!((res - 1.0).abs() < 1e-9, "residual mass {res}");
        prop_assert!(out.accumulated.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn diffusion_is_linear(g in arb_graph(), a in 0.1f64..0.9, l in 1usize..5) {
        let n = g.num_nodes() as NodeId;
        let (u, v) = (0 as NodeId, n - 1);
        let config = DiffusionConfig::new(0.85, l).unwrap();
        let combined = diffuse(&g, &[(u, a), (v, 1.0 - a)], config).unwrap();
        let du = diffuse(&g, &[(u, 1.0)], config).unwrap();
        let dv = diffuse(&g, &[(v, 1.0)], config).unwrap();
        for i in 0..g.num_nodes() {
            let want = a * du.accumulated[i] + (1.0 - a) * dv.accumulated[i];
            prop_assert!((combined.accumulated[i] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn stage_decomposition_identity(
        g in arb_graph(),
        split in 1usize..4,
        total in 2usize..6,
        seed_idx in any::<prop::sample::Index>(),
    ) {
        // Eq. 8 with full selection must reproduce GD(L) exactly.
        prop_assume!(split < total);
        let seed = seed_idx.index(g.num_nodes()) as NodeId;
        let ppr = PprParams::new(0.85, total, 10).unwrap();
        let params = MelopprParams {
            ppr,
            stages: vec![split, total - split],
            selection: SelectionStrategy::All,
            ..MelopprParams::paper_defaults()
        };
        let outcome = MelopprEngine::new(&g, params).unwrap().query(seed).unwrap();
        let exact = exact_ppr(&g, seed, &ppr).unwrap();
        for &(v, s) in &outcome.ranking {
            prop_assert!(
                (s - exact.accumulated[v as usize]).abs() < 1e-9,
                "node {v}: {s} vs {}", exact.accumulated[v as usize]
            );
        }
    }

    #[test]
    fn ball_diffusion_is_exact_within_depth(
        g in arb_graph(),
        depth in 1u32..5,
        seed_idx in any::<prop::sample::Index>(),
    ) {
        let seed = seed_idx.index(g.num_nodes()) as NodeId;
        let ball = bfs_ball(&g, seed, depth).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        let config = DiffusionConfig::new(0.85, depth as usize).unwrap();
        let on_ball = diffuse_from_seed(&sub, sub.seed_local(), config).unwrap();
        let on_full = diffuse_from_seed(&g, seed, config).unwrap();
        prop_assert_eq!(on_ball.work.leaked_mass, 0.0);
        for local in 0..sub.num_nodes() {
            let global = sub.to_global(local as NodeId) as usize;
            prop_assert!(
                (on_ball.accumulated[local] - on_full.accumulated[global]).abs() < 1e-12
            );
        }
    }

    #[test]
    fn subgraph_extraction_invariants(
        g in arb_graph(),
        depth in 0u32..4,
        seed_idx in any::<prop::sample::Index>(),
    ) {
        let seed = seed_idx.index(g.num_nodes()) as NodeId;
        let ball = bfs_ball(&g, seed, depth).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        prop_assert_eq!(sub.num_nodes(), ball.num_nodes());
        prop_assert_eq!(sub.to_global(sub.seed_local()), seed);
        for local in 0..sub.num_nodes() as NodeId {
            let global = sub.to_global(local);
            // Walk degree comes from the parent.
            prop_assert_eq!(sub.walk_degree(local), g.degree(global));
            // Local adjacency is a subset of the parent's.
            prop_assert!(sub.neighbors(local).len() <= g.degree(global) as usize);
            // Round-trip id mapping.
            prop_assert_eq!(sub.to_local(global), Some(local));
        }
    }

    #[test]
    fn top_k_agrees_between_dense_and_sparse(scores in prop::collection::vec(0.0f64..1.0, 1..50), k in 0usize..12) {
        let sparse: Vec<(NodeId, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as NodeId, s))
            .collect();
        prop_assert_eq!(top_k_dense(&scores, k), top_k_sparse(&sparse, k));
    }

    #[test]
    fn top_k_is_sorted_and_bounded(scores in prop::collection::vec(0.0f64..1.0, 0..80), k in 0usize..20) {
        let top = top_k_dense(&scores, k);
        prop_assert!(top.len() <= k);
        for w in top.windows(2) {
            prop_assert!(
                w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "ordering violated: {:?}", w
            );
        }
        // Every returned score is >= every excluded positive score? Only
        // when k entries were returned.
        if top.len() == k && k > 0 {
            let boundary = top.last().unwrap().1;
            let better = scores.iter().filter(|&&s| s > boundary).count();
            prop_assert!(better <= k);
        }
    }

    #[test]
    fn selection_strategies_return_sorted_prefixes(
        scores in prop::collection::vec(0.0f64..1.0, 0..40),
        frac in 0.0f64..1.0,
    ) {
        let candidates: Vec<(NodeId, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as NodeId, s))
            .collect();
        let all = SelectionStrategy::All.select(candidates.clone());
        let some = SelectionStrategy::TopFraction(frac).select(candidates);
        prop_assert!(some.len() <= all.len());
        // The fraction selection is a prefix of the full sorted order.
        prop_assert_eq!(&all[..some.len()], &some[..]);
    }

    #[test]
    fn precision_is_within_unit_interval(
        g in arb_graph(),
        frac in 0.0f64..1.0,
        seed_idx in any::<prop::sample::Index>(),
    ) {
        let seed = seed_idx.index(g.num_nodes()) as NodeId;
        let ppr = PprParams::new(0.85, 4, 5).unwrap();
        let params = MelopprParams {
            ppr,
            stages: vec![2, 2],
            selection: SelectionStrategy::TopFraction(frac),
            ..MelopprParams::paper_defaults()
        };
        let outcome = MelopprEngine::new(&g, params).unwrap().query(seed).unwrap();
        let exact = meloppr::exact_top_k(&g, seed, &ppr).unwrap();
        let p = meloppr::precision_at_k(&outcome.ranking, &exact, 5);
        prop_assert!((0.0..=1.0).contains(&p));
    }
}
