//! Memory-budget smoke suite — run in release mode by CI next to the
//! allocation and cache smoke tests.
//!
//! Byte-denominated memory governance is an *enforced invariant*, not a
//! report, in two places:
//!
//! * **Cache byte budgets** ([`CacheBudget::bytes`]): a Zipf batch
//!   served through a byte-budgeted shared cache must stay within its
//!   budget (the resident-bytes counter is the authority admission
//!   reserves against), with rankings bit-identical to the unbudgeted
//!   run — cache pressure changes work accounting, never answers.
//! * **Query working-set budgets** (`QueryBudget::max_memory_bytes`): a
//!   staged query under a byte budget must never report
//!   `peak_memory_bytes` above it. Over-budget balls are *segmented* —
//!   diffused exactly in frontier-contiguous pieces at full effective
//!   length — so `memory_limited` is reserved for the depth-0 floor,
//!   the only degradation segmentation cannot absorb; budgets that are
//!   never hit leave results bit-identical to unbudgeted runs.

use std::sync::Arc;

use meloppr::backend::{BatchExecutor, Meloppr, QueryRequest};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    CacheBudget, ConcurrentSubgraphCache, MelopprParams, PprBackend, PprParams, SelectionStrategy,
};
use meloppr_bench::sample_zipf_queries;

fn staged_params() -> MelopprParams {
    MelopprParams {
        ppr: PprParams::new(0.85, 6, 20).unwrap(),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopCount(4),
        ..MelopprParams::paper_defaults()
    }
}

/// The headline cache invariant: a Zipf batch under a tight byte budget
/// stays within budget — resident-bytes telemetry never exceeds the
/// configured bound, the counter agrees with the recomputed sum, and no
/// ranking moves relative to the unbudgeted run (no query budget was
/// set, so no degradation was triggered anywhere).
#[test]
fn zipf_batch_under_byte_budget_stays_within_budget_bit_identically() {
    let g = PaperGraph::G1Citeseer.generate_scaled(0.3, 42).unwrap();
    let queries = 192usize;
    let mix = sample_zipf_queries(&g, queries, 24, 1.0, 42);
    let reqs: Vec<QueryRequest> = mix.iter().map(|&s| QueryRequest::new(s)).collect();

    // Reference: an unbudgeted shared cache (same code path, no byte
    // bound) — also tells us how many bytes the working set wants.
    let unbounded = Arc::new(ConcurrentSubgraphCache::new(4096));
    let reference = Meloppr::new(&g, staged_params())
        .unwrap()
        .with_shared_cache(Arc::clone(&unbounded));
    let expected = BatchExecutor::new(4)
        .unwrap()
        .run(&reference, &reqs)
        .unwrap();
    let full_bytes = unbounded.resident_bytes();
    assert!(full_bytes > 0);

    // Budget: a third of the full working set — tight enough to force
    // byte-aware eviction mid-batch.
    let budget = (full_bytes / 3).max(1);
    let cache = Arc::new(ConcurrentSubgraphCache::with_budget(CacheBudget::bytes(
        budget,
    )));
    let backend = Meloppr::new(&g, staged_params())
        .unwrap()
        .with_shared_cache(Arc::clone(&cache));
    let batch = BatchExecutor::new(4).unwrap().run(&backend, &reqs).unwrap();

    // Within budget: the exact counter (what admission reserves against)
    // and the recomputed per-entry sum agree, and neither exceeds the
    // configured bound.
    assert!(
        cache.resident_bytes() <= budget,
        "resident {} exceeds the {budget}-byte budget",
        cache.resident_bytes()
    );
    assert_eq!(
        cache.resident_bytes(),
        cache.resident_bytes_exact(),
        "resident-bytes counter drifted from the published sum"
    );
    assert_eq!(
        batch.stats.cache_resident_bytes,
        Some(cache.resident_bytes()),
        "batch telemetry must carry the resident-bytes reading"
    );
    assert!(
        cache.stats().evictions > 0,
        "a third of the working set must force evictions"
    );

    // Bit-identical rankings: no degradation was triggered (no query
    // budget), so cache pressure must not change a single answer.
    assert_eq!(batch.stats.memory_limited_queries, 0);
    for (got, want) in batch.outcomes.iter().zip(&expected.outcomes) {
        assert_eq!(got.ranking, want.ranking);
        assert_eq!(got.stats.total_diffusions, want.stats.total_diffusions);
        assert!(!got.stats.memory_limited);
    }
}

/// The query-budget invariant: `max_memory_bytes` is enforced. Tight
/// budgets are absorbed by ball segmentation (extra piece diffusions at
/// full effective length, flag clear) — `memory_limited` is reserved
/// for the depth-0 floor, where the remaining length really does run on
/// a truncated ball.
#[test]
fn staged_query_never_reports_peak_above_its_budget() {
    let g = PaperGraph::G2Cora.generate_scaled(0.3, 9).unwrap();
    let backend = Meloppr::new(&g, staged_params()).unwrap();

    for seed in [0u32, 5, 17] {
        let unbudgeted = backend.query(&QueryRequest::new(seed)).unwrap();
        let full_peak = unbudgeted.stats.peak_memory_bytes;
        assert!(!unbudgeted.stats.memory_limited);

        // A generous budget is met without touching the schedule:
        // bit-identical result, flag clear.
        let generous = backend
            .query(&QueryRequest::new(seed).with_max_memory_bytes(full_peak * 4))
            .unwrap();
        assert_eq!(generous.ranking, unbudgeted.ranking);
        assert_eq!(generous.stats.peak_memory_bytes, full_peak);
        assert!(!generous.stats.memory_limited);

        // Tight budgets force the working set down. Segmentation keeps
        // the reported peak within the budget except at the depth-0
        // floor — the only case allowed to report `memory_limited`.
        let mut engaged = false;
        for divisor in [2usize, 3, 5] {
            let budget = (full_peak / divisor).max(1024);
            let limited = backend
                .query(&QueryRequest::new(seed).with_max_memory_bytes(budget))
                .unwrap();
            if !limited.stats.memory_limited {
                assert!(
                    limited.stats.peak_memory_bytes <= budget,
                    "seed {seed}: peak {} exceeds budget {budget} without the floor flag",
                    limited.stats.peak_memory_bytes
                );
            }
            // The budget must visibly engage: either extra segment-piece
            // diffusions ran, or the floor was hit and reported.
            engaged |= limited.stats.memory_limited
                || limited.stats.total_diffusions > unbudgeted.stats.total_diffusions;
            assert!(!limited.ranking.is_empty());
            // Deterministic degradation: the same budgeted request twice
            // is bit-identical.
            let again = backend
                .query(&QueryRequest::new(seed).with_max_memory_bytes(budget))
                .unwrap();
            assert_eq!(again.ranking, limited.ranking);
            assert_eq!(
                again.stats.peak_memory_bytes,
                limited.stats.peak_memory_bytes
            );
        }
        assert!(
            engaged,
            "seed {seed}: budgets down to a fifth of the peak never engaged \
             segmentation or the floor"
        );
    }
}

/// The estimate uses the same byte model as enforcement: under a
/// satisfiable byte budget the predicted peak also fits, so the router
/// and the runtime agree about what a budgeted staged query costs.
#[test]
fn estimate_agrees_with_enforced_budget() {
    let g = PaperGraph::G2Cora.generate_scaled(0.3, 9).unwrap();
    let backend = Meloppr::new(&g, staged_params()).unwrap();
    let unbudgeted = backend.estimate(&QueryRequest::new(5)).unwrap();
    assert!(unbudgeted.peak_memory_bytes > 0);

    let budget = unbudgeted.peak_memory_bytes / 2;
    let req = QueryRequest::new(5).with_max_memory_bytes(budget);
    let budgeted = backend.estimate(&req).unwrap();
    assert!(
        budgeted.peak_memory_bytes <= budget,
        "predicted peak {} must fit the {budget}-byte budget it models",
        budgeted.peak_memory_bytes
    );
    // Degradation trades precision, and the estimate says so.
    assert!(budgeted.expected_precision < unbudgeted.expected_precision);
    // The run the router would dispatch honours the same bound.
    let outcome = backend.query(&req).unwrap();
    assert!(outcome.stats.peak_memory_bytes <= budget);
}
