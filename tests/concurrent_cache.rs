//! Concurrent shared-cache suite: N worker threads hammering one
//! [`ConcurrentSubgraphCache`] must (a) never change query results
//! relative to the sequential uncached path, and (b) extract each hot
//! ball at most once (singleflight), asserted via the always-on
//! extraction counter.

use std::sync::Arc;

use proptest::prelude::*;

use meloppr::backend::{BatchExecutor, Meloppr, QueryRequest};
use meloppr::graph::generators;
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    bfs_ball, AdmissionPolicy, CacheBudget, CacheConsumer, ConcurrentSubgraphCache, CsrGraph,
    GraphView, MelopprParams, NodeId, PprBackend, PprParams, SelectionStrategy, Subgraph,
};

fn staged(selection: SelectionStrategy) -> MelopprParams {
    MelopprParams {
        ppr: PprParams::new(0.85, 6, 15).unwrap(),
        stages: vec![3, 3],
        selection,
        ..MelopprParams::paper_defaults()
    }
}

/// Raw cache stress: 8 threads × the same key set, started together.
/// Every thread must observe identical sub-graph content, and the cache
/// must have extracted each distinct key exactly once.
#[test]
fn stress_raw_cache_singleflight_and_consistency() {
    let g = PaperGraph::G2Cora.generate_scaled(0.25, 11).unwrap();
    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let keys: Vec<(NodeId, u32)> = (0..48u32)
        .filter(|&v| (v as usize) < g.num_nodes() && g.degree(v) > 0)
        .map(|v| (v, 1 + v % 3))
        .collect();
    let threads = 8;
    let rounds = 4;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = &cache;
            let g = &g;
            let keys = &keys;
            scope.spawn(move || {
                // Each thread walks the keys from a different starting
                // offset so lookups interleave misses and hits.
                for round in 0..rounds {
                    for i in 0..keys.len() {
                        let (node, depth) = keys[(i + t * 7 + round) % keys.len()];
                        let (sub, work) = cache.get_or_extract_counted(g, node, depth).unwrap();
                        assert_eq!(sub.to_global(sub.seed_local()), node);
                        let ball = bfs_ball(g, node, depth).unwrap();
                        let fresh = Subgraph::extract(g, &ball).unwrap();
                        assert_eq!(sub.global_ids(), fresh.global_ids());
                        assert_eq!(sub.num_edges(), fresh.num_edges());
                        // Work is charged only to the one extracting call.
                        assert!(work == 0 || work == ball.edges_scanned);
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    let distinct = keys.len() as u64;
    assert_eq!(
        stats.lookups(),
        (threads * rounds * keys.len()) as u64,
        "every lookup accounted for"
    );
    // Singleflight: with capacity ample and no evictions, each distinct
    // key is extracted at most once no matter how many threads raced.
    assert_eq!(stats.evictions, 0);
    assert!(
        stats.extractions <= distinct,
        "duplicate extraction: {} extractions for {distinct} distinct keys",
        stats.extractions
    );
    assert_eq!(stats.extractions, cache.len() as u64);
    assert_eq!(stats.misses, stats.extractions);
}

/// Engine-level stress: 6 threads serving the same query list through one
/// shared-cache backend; every ranking must be bit-identical to the
/// sequential uncached path, and hot balls must be extracted once.
#[test]
fn stress_shared_backend_matches_sequential_uncached() {
    let g = PaperGraph::G1Citeseer.generate_scaled(0.25, 5).unwrap();
    let params = staged(SelectionStrategy::TopFraction(0.1));
    let uncached = Meloppr::new(&g, params.clone()).unwrap();
    let seeds: Vec<NodeId> = (0..12u32).collect();
    let expected: Vec<_> = seeds
        .iter()
        .map(|&s| uncached.query(&QueryRequest::new(s)).unwrap().ranking)
        .collect();

    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let shared = Meloppr::new(&g, params)
        .unwrap()
        .with_shared_cache(Arc::clone(&cache));
    let threads = 6;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let shared = &shared;
            let seeds = &seeds;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..3 {
                    for i in 0..seeds.len() {
                        let idx = (i + t + round) % seeds.len();
                        let outcome = shared.query(&QueryRequest::new(seeds[idx])).unwrap();
                        assert_eq!(
                            outcome.ranking, expected[idx],
                            "shared-cache result diverged for seed {}",
                            seeds[idx]
                        );
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(stats.evictions, 0);
    // Each distinct (node, depth) ball extracted at most once across all
    // threads and rounds.
    assert_eq!(stats.extractions, cache.len() as u64);
    // 6 threads x 3 rounds x 12 queries all re-request the same balls:
    // the overwhelming majority of lookups must be free.
    assert!(stats.hit_rate() > 0.9, "hit rate too low: {:?}", stats);
}

/// Batch-executor equivalence on a fixed workload, all worker counts.
#[test]
fn shared_cache_batch_equals_per_query_path() {
    let g = PaperGraph::G2Cora.generate_scaled(0.2, 17).unwrap();
    let params = staged(SelectionStrategy::TopFraction(0.1));
    let uncached = Meloppr::new(&g, params.clone()).unwrap();
    let reqs: Vec<QueryRequest> = (0..16).map(QueryRequest::new).collect();
    let expected: Vec<_> = reqs.iter().map(|r| uncached.query(r).unwrap()).collect();

    for workers in [1usize, 2, 4, 7] {
        let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
        let shared = Meloppr::new(&g, params.clone())
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        let batch = BatchExecutor::new(workers)
            .unwrap()
            .run(&shared, &reqs)
            .unwrap();
        for (got, want) in batch.outcomes.iter().zip(&expected) {
            assert_eq!(got.ranking, want.ranking, "workers = {workers}");
            // Cached stats differ only in BFS accounting: diffusion work
            // is identical to the uncached path.
            assert_eq!(got.stats.total_diffusions, want.stats.total_diffusions);
            assert_eq!(
                got.stats.diffusion_edge_updates,
                want.stats.diffusion_edge_updates
            );
            assert!(got.stats.bfs_edges_scanned <= want.stats.bfs_edges_scanned);
        }
        let cache_stats = batch.stats.cache.expect("cache stats reported");
        assert!(cache_stats.lookups() > 0);
        assert_eq!(cache_stats.extractions, cache.len() as u64);
    }
}

/// Per-consumer attribution under concurrency: two batch executors (each
/// driving its own shared-cache backend) plus a raw third consumer all
/// hammer **one** cache at the same time. Every `BatchStats::cache`
/// delta must sum to exactly that executor's own lookups (one per
/// diffusion task), and the raw consumer must see exactly its own — no
/// cross-attribution, which the old global-counter bracketing could not
/// guarantee.
#[test]
fn concurrent_executors_attribute_exactly_their_own_lookups() {
    let g = PaperGraph::G1Citeseer.generate_scaled(0.25, 5).unwrap();
    let params = staged(SelectionStrategy::TopFraction(0.1));
    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let backend_a = Meloppr::new(&g, params.clone())
        .unwrap()
        .with_shared_cache(Arc::clone(&cache));
    let backend_b = Meloppr::new(&g, params.clone())
        .unwrap()
        .with_shared_cache(Arc::clone(&cache));
    // Overlapping but distinct workloads so both hot and cold lookups
    // race across consumers.
    let reqs_a: Vec<QueryRequest> = (0..14).map(QueryRequest::new).collect();
    let reqs_b: Vec<QueryRequest> = (7..21).map(QueryRequest::new).collect();
    let raw_keys: Vec<NodeId> = (0..24u32).filter(|&v| g.degree(v) > 0).collect();
    let raw_consumer = CacheConsumer::new(64);

    let (batch_a, batch_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| {
            BatchExecutor::new(3)
                .unwrap()
                .run(&backend_a, &reqs_a)
                .unwrap()
        });
        let b = scope.spawn(|| {
            BatchExecutor::new(2)
                .unwrap()
                .run(&backend_b, &reqs_b)
                .unwrap()
        });
        let raw = scope.spawn(|| {
            for _ in 0..2 {
                for &node in &raw_keys {
                    cache
                        .get_or_extract_counted_as(&g, node, 2, &raw_consumer)
                        .unwrap();
                }
            }
        });
        raw.join().unwrap();
        (a.join().unwrap(), b.join().unwrap())
    });

    let task_lookups = |batch: &meloppr::BatchOutcome| -> u64 {
        batch
            .outcomes
            .iter()
            .map(|o| o.stats.total_diffusions as u64)
            .sum()
    };
    let delta_a = batch_a.stats.cache.expect("cache stats for executor A");
    let delta_b = batch_b.stats.cache.expect("cache stats for executor B");
    assert_eq!(
        delta_a.lookups(),
        task_lookups(&batch_a),
        "executor A's delta must count exactly its own lookups"
    );
    assert_eq!(
        delta_b.lookups(),
        task_lookups(&batch_b),
        "executor B's delta must count exactly its own lookups"
    );
    let raw_stats = raw_consumer.stats();
    assert_eq!(
        raw_stats.lookups(),
        (2 * raw_keys.len()) as u64,
        "the raw consumer must count exactly its own lookups"
    );
    // Nothing is lost or double-counted: the global counters are the sum
    // of the three consumers (no anonymous traffic in this test).
    let global = cache.stats();
    assert_eq!(
        global.lookups(),
        delta_a.lookups() + delta_b.lookups() + raw_stats.lookups()
    );
    assert_eq!(
        global.extractions,
        delta_a.extractions + delta_b.extractions + raw_stats.extractions
    );
}

/// Windowed-rate convergence after a synthetic traffic shift, at the
/// engine level: hot traffic fills the backend's consumer window with
/// hits; a burst of cold seeds must collapse the windowed rate within
/// one window while the cumulative rate stays stale.
#[test]
fn windowed_rate_converges_where_cumulative_stays_stale() {
    let g = PaperGraph::G2Cora.generate_scaled(0.25, 17).unwrap();
    let params = staged(SelectionStrategy::TopFraction(0.1));
    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let shared = Meloppr::new(&g, params)
        .unwrap()
        .with_cache_window(48)
        .with_shared_cache(Arc::clone(&cache));
    let consumer = shared.cache_consumer().expect("shared mode has a consumer");

    // Hot phase: a handful of seeds served repeatedly.
    let hot: Vec<QueryRequest> = (0..4).cycle().take(40).map(QueryRequest::new).collect();
    BatchExecutor::new(2).unwrap().run(&shared, &hot).unwrap();
    let warm_windowed = consumer.windowed_hit_rate();
    assert!(warm_windowed > 0.6, "hot phase must warm the window");

    // Shift: every subsequent query uses a never-seen seed. Keep going
    // until the shift itself has accumulated two windows of cold misses.
    let base_misses = consumer.stats().misses;
    let mut seed = 500u32;
    while consumer.stats().misses - base_misses < consumer.window_len() as u64 * 2 {
        shared.query(&QueryRequest::new(seed)).unwrap();
        seed += 1;
    }
    let windowed = consumer.windowed_hit_rate();
    let cumulative = consumer.stats().hit_rate();
    assert!(
        windowed < cumulative,
        "windowed {windowed} must fall below stale cumulative {cumulative}"
    );
    assert!(
        windowed < warm_windowed,
        "the window must forget the hot phase"
    );
}

/// Admission property: rejected balls never evict admitted ones. With a
/// `MaxNodes` gate, interleaving over-budget lookups with hot in-budget
/// traffic must cause zero evictions and zero residency change, and
/// every admitted key must keep hitting.
#[test]
fn rejected_balls_never_evict_admitted_ones() {
    let g = generators::path(256).unwrap();
    // Depth-1 path balls have ≤ 3 nodes; depth-40 balls have ~81.
    let cache = Arc::new(
        ConcurrentSubgraphCache::with_shards(8, 1).with_admission(AdmissionPolicy::MaxNodes(8)),
    );
    let consumer = CacheConsumer::new(32);
    let admitted: Vec<NodeId> = (40..48u32).collect();
    for &node in &admitted {
        cache
            .get_or_extract_counted_as(&g, node, 1, &consumer)
            .unwrap();
    }
    assert_eq!(cache.len(), admitted.len());
    let resident_before = cache.len();

    // A storm of giant one-off balls, all over budget.
    for seed in [100u32, 120, 140, 160, 180] {
        let (sub, work) = cache
            .get_or_extract_counted_as(&g, seed, 40, &consumer)
            .unwrap();
        assert!(sub.num_nodes() > 8);
        assert!(work > 0, "rejected balls are served fresh every time");
    }
    let stats = cache.stats();
    assert_eq!(stats.rejected_admissions, 5);
    assert_eq!(stats.evictions, 0, "rejected balls must not evict");
    assert_eq!(cache.len(), resident_before, "residency unchanged");
    // Every admitted ball still hits.
    for &node in &admitted {
        let (_, work) = cache
            .get_or_extract_counted_as(&g, node, 1, &consumer)
            .unwrap();
        assert_eq!(work, 0, "admitted ball {node} was displaced");
    }
}

/// Regression for the per-shard capacity rounding: 16 entries striped
/// over 8 shards used to admit up to `capacity + shards - 1` residents
/// (each shard enforced `ceil(16/8)` locally). The global reservation
/// counter must hold the exact bound under concurrent inserts — a full
/// cache never exceeds its configured budget, not even transiently (the
/// CAS reservation makes overshoot impossible, so the post-join check
/// plus mid-run byte probes below cover it).
#[test]
fn full_cache_never_exceeds_entry_budget_under_concurrent_inserts() {
    let g = generators::path(4096).unwrap();
    let cache = Arc::new(ConcurrentSubgraphCache::with_shards(16, 8));
    let threads = 8;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = &cache;
            let g = &g;
            scope.spawn(move || {
                for i in 0..64u32 {
                    let seed = (t as u32) * 64 + i;
                    cache.get_or_extract(g, seed, 1).unwrap();
                    // Mid-churn, the global bound must already hold.
                    assert!(
                        cache.resident_entries() <= 16,
                        "entry budget exceeded under concurrency"
                    );
                }
            });
        }
    });
    assert_eq!(cache.resident_entries(), 16, "a full cache fills exactly");
    assert!(cache.len() <= 16);
    assert_eq!(cache.resident_bytes(), cache.resident_bytes_exact());
    let stats = cache.stats();
    assert_eq!(stats.extractions, 8 * 64);
    assert_eq!(stats.evictions, 8 * 64 - 16);
}

/// Byte budgets hold under concurrent churn too: the resident-bytes
/// counter (which admission reserves against) never exceeds the bound
/// mid-run, and agrees with the recomputed published sum at quiesce.
#[test]
fn byte_budget_holds_under_concurrent_churn() {
    let g = generators::path(2048).unwrap();
    let probe = Subgraph::extract(&g, &bfs_ball(&g, 100, 1).unwrap()).unwrap();
    let budget = probe.memory_bytes().total() * 10; // room for ~10 small balls
    let cache = Arc::new(ConcurrentSubgraphCache::with_budget(CacheBudget::bytes(
        budget,
    )));
    std::thread::scope(|scope| {
        for t in 0..6usize {
            let cache = &cache;
            let g = &g;
            scope.spawn(move || {
                for i in 0..96u32 {
                    // Mixed depths: ball sizes vary, so byte-aware
                    // eviction has to evict a varying number of victims
                    // per admission.
                    let seed = ((t as u32) * 313 + i * 7) % 2000;
                    let depth = 1 + (i % 3);
                    cache.get_or_extract(g, seed, depth).unwrap();
                    assert!(
                        cache.resident_bytes() <= budget,
                        "byte budget exceeded under concurrency"
                    );
                }
            });
        }
    });
    assert!(cache.resident_bytes() <= budget);
    assert_eq!(
        cache.resident_bytes(),
        cache.resident_bytes_exact(),
        "counter must equal the sum over published entries"
    );
    assert!(cache.stats().evictions > 0, "churn must evict");
}

/// Strategy: a connected-ish random simple graph (as `tests/properties.rs`).
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (8usize..40, any::<u64>()).prop_map(|(n, seed)| {
        generators::locality_preferential(n, (n - 1) + n / 2, 0.5, n / 2 + 1, seed)
            .expect("valid generator parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for random graphs, stage splits and selections, serving
    /// a batch through a shared-cache `BatchExecutor` returns exactly the
    /// rankings of the per-query uncached path.
    #[test]
    fn prop_shared_cache_batch_matches_per_query(
        g in arb_graph(),
        fraction in 0.05f64..0.5,
        workers in 1usize..5,
        capacity in 4usize..64,
    ) {
        let params = staged(SelectionStrategy::TopFraction(fraction));
        let uncached = Meloppr::new(&g, params.clone()).unwrap();
        let reqs: Vec<QueryRequest> =
            (0..g.num_nodes().min(10) as u32).map(QueryRequest::new).collect();
        let expected: Vec<_> = reqs.iter().map(|r| uncached.query(r).unwrap()).collect();

        // Small capacities force evictions mid-batch; results must hold.
        let cache = Arc::new(ConcurrentSubgraphCache::new(capacity));
        let shared = Meloppr::new(&g, params)
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        let batch = BatchExecutor::new(workers).unwrap().run(&shared, &reqs).unwrap();
        for (got, want) in batch.outcomes.iter().zip(&expected) {
            prop_assert_eq!(&got.ranking, &want.ranking);
        }
        let stats = batch.stats.cache.expect("cache stats");
        prop_assert_eq!(stats.lookups(), stats.hits + stats.shared + stats.misses);
        prop_assert!(cache.len() <= capacity + cache.shard_count());
    }

    /// Property: a `MaxNodes` admission gate never changes answers, every
    /// demand miss still extracts, and rejected balls never push the
    /// cache over budget or evict admitted residents.
    #[test]
    fn prop_admission_preserves_answers_and_counters(
        g in arb_graph(),
        fraction in 0.05f64..0.5,
        budget in 1usize..16,
        workers in 1usize..4,
    ) {
        let params = staged(SelectionStrategy::TopFraction(fraction));
        let uncached = Meloppr::new(&g, params.clone()).unwrap();
        let reqs: Vec<QueryRequest> =
            (0..g.num_nodes().min(8) as u32).map(QueryRequest::new).collect();
        let expected: Vec<_> = reqs.iter().map(|r| uncached.query(r).unwrap()).collect();

        let cache = Arc::new(
            ConcurrentSubgraphCache::with_shards(64, 1)
                .with_admission(AdmissionPolicy::MaxNodes(budget)),
        );
        let shared = Meloppr::new(&g, params)
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        let batch = BatchExecutor::new(workers).unwrap().run(&shared, &reqs).unwrap();
        for (got, want) in batch.outcomes.iter().zip(&expected) {
            prop_assert_eq!(&got.ranking, &want.ranking);
        }
        let global = cache.stats();
        // Every demand miss extracted (no warming in this test)…
        prop_assert_eq!(global.misses, global.extractions);
        // …rejections are a subset of extractions…
        prop_assert!(global.rejected_admissions <= global.extractions);
        // …and with capacity ample, nothing rejected caused an eviction.
        prop_assert_eq!(global.evictions, 0);
        prop_assert_eq!(cache.len() as u64, global.extractions - global.rejected_admissions);
    }

    /// Property: the resident-bytes counter always equals the sum of
    /// `memory_bytes().total()` over published entries, under random
    /// insert/evict/reject churn across threads — and never exceeds a
    /// configured byte budget.
    #[test]
    fn prop_resident_bytes_counter_matches_published_sum(
        g in arb_graph(),
        budget_balls in 2usize..12,
        max_nodes in 4usize..24,
        threads in 1usize..4,
        seed_stride in 1u32..7,
    ) {
        // Budget in bytes, derived from a probe ball so it scales with
        // the random graph; MaxNodes admission adds reject churn.
        let probe = Subgraph::extract(&g, &bfs_ball(&g, 0, 1).unwrap()).unwrap();
        let budget = probe.memory_bytes().total() * budget_balls;
        let cache = Arc::new(
            ConcurrentSubgraphCache::with_budget_and_shards(CacheBudget::bytes(budget), 4)
                .with_admission(AdmissionPolicy::MaxNodes(max_nodes)),
        );
        let n = g.num_nodes() as u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                let g = &g;
                scope.spawn(move || {
                    for i in 0..48u32 {
                        let seed = (t as u32 + i * seed_stride) % n;
                        let depth = i % 3;
                        cache.get_or_extract(g, seed, depth).unwrap();
                    }
                });
            }
        });
        prop_assert_eq!(cache.resident_bytes(), cache.resident_bytes_exact());
        prop_assert!(cache.resident_bytes() <= budget);
        // Nothing over the node gate ever became resident.
        let global = cache.stats();
        prop_assert!(global.misses == global.extractions);
    }
}
