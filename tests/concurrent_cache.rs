//! Concurrent shared-cache suite: N worker threads hammering one
//! [`ConcurrentSubgraphCache`] must (a) never change query results
//! relative to the sequential uncached path, and (b) extract each hot
//! ball at most once (singleflight), asserted via the always-on
//! extraction counter.

use std::sync::Arc;

use proptest::prelude::*;

use meloppr::backend::{BatchExecutor, Meloppr, QueryRequest};
use meloppr::graph::generators;
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    bfs_ball, ConcurrentSubgraphCache, CsrGraph, MelopprParams, NodeId, PprBackend, PprParams,
    SelectionStrategy, Subgraph,
};

fn staged(selection: SelectionStrategy) -> MelopprParams {
    MelopprParams {
        ppr: PprParams::new(0.85, 6, 15).unwrap(),
        stages: vec![3, 3],
        selection,
        ..MelopprParams::paper_defaults()
    }
}

/// Raw cache stress: 8 threads × the same key set, started together.
/// Every thread must observe identical sub-graph content, and the cache
/// must have extracted each distinct key exactly once.
#[test]
fn stress_raw_cache_singleflight_and_consistency() {
    let g = PaperGraph::G2Cora.generate_scaled(0.25, 11).unwrap();
    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let keys: Vec<(NodeId, u32)> = (0..48u32)
        .filter(|&v| (v as usize) < g.num_nodes() && g.degree(v) > 0)
        .map(|v| (v, 1 + v % 3))
        .collect();
    let threads = 8;
    let rounds = 4;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = &cache;
            let g = &g;
            let keys = &keys;
            scope.spawn(move || {
                // Each thread walks the keys from a different starting
                // offset so lookups interleave misses and hits.
                for round in 0..rounds {
                    for i in 0..keys.len() {
                        let (node, depth) = keys[(i + t * 7 + round) % keys.len()];
                        let (sub, work) = cache.get_or_extract_counted(g, node, depth).unwrap();
                        assert_eq!(sub.to_global(sub.seed_local()), node);
                        let ball = bfs_ball(g, node, depth).unwrap();
                        let fresh = Subgraph::extract(g, &ball).unwrap();
                        assert_eq!(sub.global_ids(), fresh.global_ids());
                        assert_eq!(sub.num_edges(), fresh.num_edges());
                        // Work is charged only to the one extracting call.
                        assert!(work == 0 || work == ball.edges_scanned);
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    let distinct = keys.len() as u64;
    assert_eq!(
        stats.lookups(),
        (threads * rounds * keys.len()) as u64,
        "every lookup accounted for"
    );
    // Singleflight: with capacity ample and no evictions, each distinct
    // key is extracted at most once no matter how many threads raced.
    assert_eq!(stats.evictions, 0);
    assert!(
        stats.extractions <= distinct,
        "duplicate extraction: {} extractions for {distinct} distinct keys",
        stats.extractions
    );
    assert_eq!(stats.extractions, cache.len() as u64);
    assert_eq!(stats.misses, stats.extractions);
}

/// Engine-level stress: 6 threads serving the same query list through one
/// shared-cache backend; every ranking must be bit-identical to the
/// sequential uncached path, and hot balls must be extracted once.
#[test]
fn stress_shared_backend_matches_sequential_uncached() {
    let g = PaperGraph::G1Citeseer.generate_scaled(0.25, 5).unwrap();
    let params = staged(SelectionStrategy::TopFraction(0.1));
    let uncached = Meloppr::new(&g, params.clone()).unwrap();
    let seeds: Vec<NodeId> = (0..12u32).collect();
    let expected: Vec<_> = seeds
        .iter()
        .map(|&s| uncached.query(&QueryRequest::new(s)).unwrap().ranking)
        .collect();

    let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
    let shared = Meloppr::new(&g, params)
        .unwrap()
        .with_shared_cache(Arc::clone(&cache));
    let threads = 6;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let shared = &shared;
            let seeds = &seeds;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..3 {
                    for i in 0..seeds.len() {
                        let idx = (i + t + round) % seeds.len();
                        let outcome = shared.query(&QueryRequest::new(seeds[idx])).unwrap();
                        assert_eq!(
                            outcome.ranking, expected[idx],
                            "shared-cache result diverged for seed {}",
                            seeds[idx]
                        );
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(stats.evictions, 0);
    // Each distinct (node, depth) ball extracted at most once across all
    // threads and rounds.
    assert_eq!(stats.extractions, cache.len() as u64);
    // 6 threads x 3 rounds x 12 queries all re-request the same balls:
    // the overwhelming majority of lookups must be free.
    assert!(stats.hit_rate() > 0.9, "hit rate too low: {:?}", stats);
}

/// Batch-executor equivalence on a fixed workload, all worker counts.
#[test]
fn shared_cache_batch_equals_per_query_path() {
    let g = PaperGraph::G2Cora.generate_scaled(0.2, 17).unwrap();
    let params = staged(SelectionStrategy::TopFraction(0.1));
    let uncached = Meloppr::new(&g, params.clone()).unwrap();
    let reqs: Vec<QueryRequest> = (0..16).map(QueryRequest::new).collect();
    let expected: Vec<_> = reqs.iter().map(|r| uncached.query(r).unwrap()).collect();

    for workers in [1usize, 2, 4, 7] {
        let cache = Arc::new(ConcurrentSubgraphCache::new(4096));
        let shared = Meloppr::new(&g, params.clone())
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        let batch = BatchExecutor::new(workers)
            .unwrap()
            .run(&shared, &reqs)
            .unwrap();
        for (got, want) in batch.outcomes.iter().zip(&expected) {
            assert_eq!(got.ranking, want.ranking, "workers = {workers}");
            // Cached stats differ only in BFS accounting: diffusion work
            // is identical to the uncached path.
            assert_eq!(got.stats.total_diffusions, want.stats.total_diffusions);
            assert_eq!(
                got.stats.diffusion_edge_updates,
                want.stats.diffusion_edge_updates
            );
            assert!(got.stats.bfs_edges_scanned <= want.stats.bfs_edges_scanned);
        }
        let cache_stats = batch.stats.cache.expect("cache stats reported");
        assert!(cache_stats.lookups() > 0);
        assert_eq!(cache_stats.extractions, cache.len() as u64);
    }
}

/// Strategy: a connected-ish random simple graph (as `tests/properties.rs`).
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (8usize..40, any::<u64>()).prop_map(|(n, seed)| {
        generators::locality_preferential(n, (n - 1) + n / 2, 0.5, n / 2 + 1, seed)
            .expect("valid generator parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for random graphs, stage splits and selections, serving
    /// a batch through a shared-cache `BatchExecutor` returns exactly the
    /// rankings of the per-query uncached path.
    #[test]
    fn prop_shared_cache_batch_matches_per_query(
        g in arb_graph(),
        fraction in 0.05f64..0.5,
        workers in 1usize..5,
        capacity in 4usize..64,
    ) {
        let params = staged(SelectionStrategy::TopFraction(fraction));
        let uncached = Meloppr::new(&g, params.clone()).unwrap();
        let reqs: Vec<QueryRequest> =
            (0..g.num_nodes().min(10) as u32).map(QueryRequest::new).collect();
        let expected: Vec<_> = reqs.iter().map(|r| uncached.query(r).unwrap()).collect();

        // Small capacities force evictions mid-batch; results must hold.
        let cache = Arc::new(ConcurrentSubgraphCache::new(capacity));
        let shared = Meloppr::new(&g, params)
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        let batch = BatchExecutor::new(workers).unwrap().run(&shared, &reqs).unwrap();
        for (got, want) in batch.outcomes.iter().zip(&expected) {
            prop_assert_eq!(&got.ranking, &want.ranking);
        }
        let stats = batch.stats.cache.expect("cache stats");
        prop_assert_eq!(stats.lookups(), stats.hits + stats.shared + stats.misses);
        prop_assert!(cache.len() <= capacity + cache.shard_count());
    }
}
