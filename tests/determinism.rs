//! Reproducibility guarantees: every engine is bit-for-bit deterministic,
//! and the parallel executor matches the sequential one exactly.

use meloppr::backend::Meloppr;
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    HybridConfig, HybridMeloppr, MelopprEngine, MelopprParams, PprBackend, PprParams, QueryRequest,
    SelectionStrategy,
};

fn test_params() -> MelopprParams {
    MelopprParams {
        ppr: PprParams::new(0.85, 6, 30).unwrap(),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.08),
        ..MelopprParams::paper_defaults()
    }
}

#[test]
fn sequential_engine_is_deterministic() {
    let g = PaperGraph::G2Cora.generate_scaled(0.2, 13).unwrap();
    let engine = MelopprEngine::new(&g, test_params()).unwrap();
    let a = engine.query(5).unwrap();
    let b = engine.query(5).unwrap();
    assert_eq!(a.ranking, b.ranking);
    assert_eq!(a.stats.trace, b.stats.trace);
}

#[test]
fn graph_generation_is_deterministic_across_calls() {
    let a = PaperGraph::G3Pubmed.generate_scaled(0.05, 21).unwrap();
    let b = PaperGraph::G3Pubmed.generate_scaled(0.05, 21).unwrap();
    assert_eq!(a, b);
}

#[test]
fn parallel_matches_sequential_bit_for_bit() {
    let g = PaperGraph::G1Citeseer.generate_scaled(0.25, 17).unwrap();
    let params = test_params();
    let engine = MelopprEngine::new(&g, params.clone()).unwrap();
    for seed in [0u32, 40, 333] {
        let sequential = engine.query(seed).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel = Meloppr::new(&g, params.clone())
                .unwrap()
                .with_threads(threads)
                .unwrap()
                .query(&QueryRequest::new(seed))
                .unwrap();
            assert_eq!(
                parallel.ranking, sequential.ranking,
                "seed {seed} threads {threads}"
            );
            assert_eq!(parallel.stats.stages, sequential.stats.stages);
        }
    }
}

#[test]
fn hybrid_is_deterministic_and_parallelism_invariant() {
    let g = PaperGraph::G2Cora.generate_scaled(0.15, 19).unwrap();
    let params = test_params();
    let run = |p: usize| {
        let config = HybridConfig {
            accel: meloppr::AcceleratorConfig {
                parallelism: p,
                ..meloppr::AcceleratorConfig::default()
            },
            ..HybridConfig::default()
        };
        HybridMeloppr::new(&g, params.clone(), config)
            .unwrap()
            .query(7)
            .unwrap()
    };
    let a = run(4);
    let b = run(4);
    assert_eq!(a, b, "same configuration must reproduce exactly");
    // Parallelism changes timing but never the functional result.
    let c = run(16);
    assert_eq!(a.ranking_int, c.ranking_int);
    assert_eq!(a.stats.truncation_loss, c.stats.truncation_loss);
}

#[test]
fn distinct_seeds_give_distinct_answers() {
    // Sanity against accidentally global state: different query seeds must
    // produce different rankings on a non-trivial graph.
    let g = PaperGraph::G1Citeseer.generate_scaled(0.2, 23).unwrap();
    let engine = MelopprEngine::new(&g, test_params()).unwrap();
    let a = engine.query(3).unwrap().ranking;
    let b = engine.query(400).unwrap().ranking;
    assert_ne!(a, b);
    // The seed always appears in its own top-k (it may be outranked by a
    // hub that funnels its mass, but never absent).
    assert!(a.iter().any(|&(v, _)| v == 3));
    assert!(b.iter().any(|&(v, _)| v == 400));
}

#[test]
fn batch_queries_match_individual_queries() {
    // query_batch through the trait must be exactly the per-request loop.
    let g = PaperGraph::G2Cora.generate_scaled(0.15, 29).unwrap();
    let backend = Meloppr::new(&g, test_params()).unwrap();
    let reqs: Vec<QueryRequest> = [3u32, 9, 27]
        .iter()
        .map(|&s| QueryRequest::new(s))
        .collect();
    let batch = backend.query_batch(&reqs).unwrap();
    for (req, batched) in reqs.iter().zip(&batch) {
        let single = backend.query(req).unwrap();
        assert_eq!(&single, batched);
    }
}
