//! Backend-equivalence suite: for every backend, the trait-object path
//! (`Box<dyn PprBackend>`) must return **bit-identical** rankings to the
//! corresponding direct engine call, on the karate-club fixture and a
//! synthetic corpus graph.
//!
//! The pre-redesign free functions (`local_ppr`, `monte_carlo_ppr`,
//! `parallel_query`, `query_cached`) are gone; the remaining direct
//! engines ([`MelopprEngine`], [`HybridMeloppr`], [`exact_top_k`]) and
//! cross-mode agreement pin the API instead.

use meloppr::backend::{ExactPower, LocalPpr, Meloppr, MonteCarlo};
use meloppr::graph::generators::{self, corpus::PaperGraph};
use meloppr::{
    exact_top_k, CsrGraph, FpgaHybrid, HybridConfig, HybridMeloppr, MelopprEngine, MelopprParams,
    PprBackend, PprParams, QueryRequest, Ranking, SelectionStrategy,
};

fn fixtures() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("karate", generators::karate_club()),
        (
            "cora-ish",
            PaperGraph::G2Cora.generate_scaled(0.2, 11).unwrap(),
        ),
    ]
}

fn seeds_for(g: &CsrGraph) -> Vec<u32> {
    [0u32, 1, 7]
        .into_iter()
        .filter(|&s| (s as usize) < g.num_nodes())
        .collect()
}

fn staged_params() -> MelopprParams {
    MelopprParams {
        ppr: PprParams::new(0.85, 6, 15).unwrap(),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.1),
        ..MelopprParams::paper_defaults()
    }
}

/// Runs `backend` as a trait object and returns the ranking — the shape
/// serving code will use.
fn query_boxed(backend: Box<dyn PprBackend + '_>, seed: u32) -> Ranking {
    backend.query(&QueryRequest::new(seed)).unwrap().ranking
}

#[test]
fn exact_power_backend_equals_exact_top_k() {
    for (name, g) in &fixtures() {
        let ppr = PprParams::new(0.85, 4, 10).unwrap();
        for seed in seeds_for(g) {
            let direct = exact_top_k(g, seed, &ppr).unwrap();
            let boxed = query_boxed(Box::new(ExactPower::new(g, ppr).unwrap()), seed);
            assert_eq!(boxed, direct, "{name} seed {seed}");
        }
    }
}

#[test]
fn local_ppr_backend_equals_single_stage_engine() {
    // A one-stage MeLoPPR with full selection runs exactly one diffusion
    // on the depth-L ball — the LocalPPR-CPU computation — so the two
    // must agree bit for bit.
    for (name, g) in &fixtures() {
        let ppr = PprParams::new(0.85, 5, 12).unwrap();
        let staged = MelopprParams {
            ppr,
            stages: vec![ppr.length],
            selection: SelectionStrategy::All,
            ..MelopprParams::paper_defaults()
        };
        let engine = MelopprEngine::new(g, staged).unwrap();
        for seed in seeds_for(g) {
            let direct = engine.query(seed).unwrap().ranking;
            let boxed = query_boxed(Box::new(LocalPpr::new(g, ppr).unwrap()), seed);
            assert_eq!(boxed, direct, "{name} seed {seed}");
        }
    }
}

#[test]
fn monte_carlo_backend_is_seed_deterministic() {
    for (name, g) in &fixtures() {
        let ppr = PprParams::new(0.85, 5, 8).unwrap();
        for seed in seeds_for(g) {
            // Two independently constructed backends with the same RNG
            // seed agree bit for bit; a different RNG seed diverges
            // (proving the seed is actually threaded through).
            let a = query_boxed(Box::new(MonteCarlo::new(g, ppr, 3000, 42).unwrap()), seed);
            let b = query_boxed(Box::new(MonteCarlo::new(g, ppr, 3000, 42).unwrap()), seed);
            assert_eq!(a, b, "{name} seed {seed}");
            let c = query_boxed(Box::new(MonteCarlo::new(g, ppr, 3000, 43).unwrap()), seed);
            assert_ne!(a, c, "{name} seed {seed}: rng seed ignored");
        }
    }
}

#[test]
fn meloppr_backend_equals_engine_query() {
    for (name, g) in &fixtures() {
        let params = staged_params();
        let engine = MelopprEngine::new(g, params.clone()).unwrap();
        for seed in seeds_for(g) {
            let direct = engine.query(seed).unwrap().ranking;
            let boxed = query_boxed(Box::new(Meloppr::new(g, params.clone()).unwrap()), seed);
            assert_eq!(boxed, direct, "{name} seed {seed}");
        }
    }
}

#[test]
fn meloppr_threaded_backend_equals_sequential() {
    for (name, g) in &fixtures() {
        let params = staged_params();
        let engine = MelopprEngine::new(g, params.clone()).unwrap();
        for seed in seeds_for(g) {
            let direct = engine.query(seed).unwrap().ranking;
            let boxed = query_boxed(
                Box::new(
                    Meloppr::new(g, params.clone())
                        .unwrap()
                        .with_threads(4)
                        .unwrap(),
                ),
                seed,
            );
            assert_eq!(boxed, direct, "{name} seed {seed}");
        }
    }
}

#[test]
fn meloppr_cached_backend_equals_uncached() {
    for (name, g) in &fixtures() {
        let params = staged_params();
        let engine = MelopprEngine::new(g, params.clone()).unwrap();
        let cached_backend = Meloppr::new(g, params.clone()).unwrap().with_cache(64);
        for round in 0..2 {
            // Round two hits the warm cache; results must not change.
            for seed in seeds_for(g) {
                let direct = engine.query(seed).unwrap().ranking;
                let via_trait = cached_backend
                    .query(&QueryRequest::new(seed))
                    .unwrap()
                    .ranking;
                assert_eq!(via_trait, direct, "{name} seed {seed} round {round}");
            }
        }
    }
}

#[test]
fn fpga_backend_equals_hybrid_query() {
    for (name, g) in &fixtures() {
        let params = staged_params();
        let direct_engine = HybridMeloppr::new(g, params.clone(), HybridConfig::default()).unwrap();
        for seed in seeds_for(g) {
            let direct = direct_engine.query(seed).unwrap().ranking;
            let boxed = query_boxed(
                Box::new(FpgaHybrid::new(g, params.clone(), HybridConfig::default()).unwrap()),
                seed,
            );
            assert_eq!(boxed, direct, "{name} seed {seed}");
        }
    }
}

#[test]
fn all_five_backends_serve_through_one_trait_object_collection() {
    // The redesign's point: heterogeneous solvers behind one vec.
    let g = generators::karate_club();
    let ppr = PprParams::new(0.85, 4, 5).unwrap();
    let staged = MelopprParams {
        ppr,
        stages: vec![2, 2],
        selection: SelectionStrategy::All,
        ..MelopprParams::paper_defaults()
    };
    let backends: Vec<Box<dyn PprBackend>> = vec![
        Box::new(ExactPower::new(&g, ppr).unwrap()),
        Box::new(LocalPpr::new(&g, ppr).unwrap()),
        Box::new(MonteCarlo::new(&g, ppr, 5000, 7).unwrap()),
        Box::new(Meloppr::new(&g, staged.clone()).unwrap()),
        Box::new(FpgaHybrid::new(&g, staged, HybridConfig::default()).unwrap()),
    ];
    let req = QueryRequest::new(0);
    let exact = exact_top_k(&g, 0, &ppr).unwrap();
    for backend in &backends {
        let outcome = backend.query(&req).unwrap();
        assert_eq!(outcome.ranking.len(), 5, "{}", backend.capabilities().kind);
        assert_eq!(outcome.stats.backend, backend.capabilities().kind);
        // Every solver agrees the seed dominates the karate club.
        assert_eq!(outcome.ranking[0].0, exact[0].0);
        // Estimates exist for every backend (the router's food).
        let est = backend.estimate(&req).unwrap();
        assert!(est.latency_ns >= 0.0);
        assert!(est.expected_precision > 0.0);
        // And batches agree with sequential queries through the same
        // trait object.
        let reqs = [QueryRequest::new(0), QueryRequest::new(1)];
        let batch = backend.query_batch(&reqs).unwrap();
        let loop_outcomes: Vec<_> = reqs.iter().map(|r| backend.query(r).unwrap()).collect();
        assert_eq!(batch, loop_outcomes, "{}", backend.capabilities().kind);
    }
}
