//! Integration tests for the paper's quantitative claims: Table II's
//! memory directions and §V-A/§V-B's fixed-point and global-table bounds.

use meloppr::backend::LocalPpr;
use meloppr::core::memory::{cpu_task_memory, fpga_bram_bytes};
use meloppr::core::precision::precision_at_k;
use meloppr::fpga::{DegreeScale, FixedPointFormat, ResourceModel};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    AcceleratorConfig, HybridConfig, HybridMeloppr, MelopprEngine, MelopprParams, PprBackend,
    PprParams, QueryRequest, SelectionStrategy,
};

fn paper_like_params(k: usize) -> MelopprParams {
    MelopprParams {
        ppr: PprParams::new(0.85, 6, k).unwrap(),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.02),
        ..MelopprParams::paper_defaults()
    }
}

/// Table II's headline: MeLoPPR's peak working set is smaller than the
/// baseline's depth-L ball, and the FPGA's packed tables are smaller
/// still. Verified on scaled stand-ins of every corpus graph.
#[test]
fn memory_reductions_hold_across_corpus() {
    for pg in PaperGraph::ALL {
        let scale = if pg.is_large() { 0.01 } else { 0.2 };
        let g = pg.generate_scaled(scale, 42).unwrap();
        let params = paper_like_params(50);
        let engine = MelopprEngine::new(&g, params.clone()).unwrap();

        let baseline_backend = LocalPpr::new(&g, params.ppr).unwrap();
        let mut wins = 0usize;
        let seeds = [1u32, 7, 23];
        for &s in &seeds {
            let baseline = baseline_backend.query(&QueryRequest::new(s)).unwrap();
            let outcome = engine.query(s).unwrap();
            if outcome.stats.peak_task_memory.total() <= baseline.stats.peak_memory_bytes {
                wins += 1;
            }
            // The FPGA tables for the same peak ball are smaller than the
            // CPU model of that ball (packed 4-byte words vs 8-byte).
            let peak = outcome
                .stats
                .trace
                .iter()
                .max_by_key(|t| t.ball_nodes)
                .unwrap();
            assert!(
                fpga_bram_bytes(peak.ball_nodes, peak.ball_edges)
                    < cpu_task_memory(peak.ball_nodes, peak.ball_edges).total(),
                "{pg}: FPGA tables should undercut the CPU model"
            );
        }
        assert!(
            wins >= 2,
            "{pg}: MeLoPPR should reduce memory for most seeds ({wins}/3)"
        );
    }
}

/// §V-A: top-k precision loss from 32-bit integer scores obeys the paper's
/// ordering — `d = max_degree` is (near-)lossless, `d = avg` loses a few
/// percent at most.
#[test]
fn fixed_point_loss_bounds() {
    let g = PaperGraph::G1Citeseer.generate_scaled(0.3, 9).unwrap();
    let params = paper_like_params(100).with_selection(SelectionStrategy::TopFraction(0.05));
    let float_engine = MelopprEngine::new(&g, params.clone()).unwrap();

    let mut results = Vec::new();
    for scale in [DegreeScale::Average, DegreeScale::HalfMax, DegreeScale::Max] {
        let config = HybridConfig {
            accel: AcceleratorConfig {
                degree_scale: scale,
                ..AcceleratorConfig::default()
            },
            ..HybridConfig::default()
        };
        let hybrid = HybridMeloppr::new(&g, params.clone(), config).unwrap();
        let mut total = 0.0;
        let seeds = [3u32, 50, 200, 444];
        for &s in &seeds {
            let float_rank = float_engine.query(s).unwrap().ranking;
            let int_rank = hybrid.query(s).unwrap().ranking;
            total += precision_at_k(&int_rank, &float_rank, 100);
        }
        results.push(total / 4.0);
    }
    let (avg, half, max) = (results[0], results[1], results[2]);
    assert!(avg >= 0.9, "avg-degree scaling too lossy: {avg}");
    assert!(
        half >= 0.95,
        "paper's d = max/2 should be nearly lossless: {half}"
    );
    assert!(max >= 0.95, "d = max should be nearly lossless: {max}");
    assert!(max >= avg - 1e-9, "loss must not grow with d");
}

/// §V-B: a `c·k` table with c ≥ 8 is effectively lossless; c = 1 costs
/// noticeably more.
#[test]
fn global_table_factor_bounds() {
    let g = PaperGraph::G2Cora.generate_scaled(0.3, 5).unwrap();
    let base = paper_like_params(100).with_selection(SelectionStrategy::TopFraction(0.2));
    let exact_engine = MelopprEngine::new(&g, base.clone()).unwrap();
    let seeds = [2u32, 111, 321];

    let measure = |c: usize| {
        let engine = MelopprEngine::new(&g, base.clone().with_table_factor(c)).unwrap();
        let mut total = 0.0;
        for &s in &seeds {
            let reference = exact_engine.query(s).unwrap().ranking;
            let bounded = engine.query(s).unwrap().ranking;
            total += precision_at_k(&bounded, &reference, 100);
        }
        total / seeds.len() as f64
    };
    let c8 = measure(8);
    let c1 = measure(1);
    assert!(c8 >= 0.99, "c = 8 should be near-lossless: {c8}");
    assert!(c8 >= c1, "larger tables can't be worse: c8 {c8} vs c1 {c1}");
}

/// The fixed-point format is consistent for every corpus graph (no
/// overflow at paper scales).
#[test]
fn fixed_point_format_fits_all_corpus_graphs() {
    for pg in PaperGraph::ALL {
        let scale = if pg.is_large() { 0.01 } else { 0.5 };
        let g = pg.generate_scaled(scale, 1).unwrap();
        let fmt = FixedPointFormat::for_graph(&g, 0.85, 10, DegreeScale::HalfMax).unwrap();
        assert!(fmt.max_value() > 0);
        assert!((fmt.effective_alpha() - 0.85).abs() < 1e-2, "{pg}");
    }
}

/// Resource model sanity: the paper's design point (P = 16) fits the
/// KC705; doubling it does not.
#[test]
fn resource_model_limits() {
    let model = ResourceModel::kc705();
    assert!(model.utilization(16).lut_fraction < 1.0);
    assert!(model.utilization(16).bram_fraction < 1.0);
    assert!(model.utilization(32).lut_fraction > 1.0);
}
