//! Warm-restart persistence tests: a router that learned latency
//! corrections (and cache hit-rate windows) saves them to the versioned
//! state file, and a freshly built router that loads the file routes its
//! **first** post-restart request with the pre-restart EWMAs — asserted
//! against a cold-started twin that repeats the miscalibrated choice.
//! Corrupt and version-mismatched files are ignored without touching the
//! router's state.

use std::path::PathBuf;
use std::sync::Arc;

use meloppr::backend::persist::{self, PersistedState};
use meloppr::backend::Meloppr;
use meloppr::core::backend::{BackendCaps, CostEstimate};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    BackendKind, CacheBudget, ConcurrentSubgraphCache, MelopprParams, PprBackend, PprParams,
    PrecisionClass, QueryOutcome, QueryRequest, QueryStats, QueryWorkspace, Router,
    SelectionStrategy,
};

/// A unique scratch path per test (the two tests must not share a file).
fn scratch(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "meloppr-persist-{tag}-{}.state",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// A solver whose static model lies about latency by a large factor:
/// `estimate` predicts `predicted_ns`, served queries report `actual_ns`.
struct Miscalibrated {
    kind: BackendKind,
    precision: f64,
    predicted_ns: f64,
    actual_ns: f64,
}

impl PprBackend for Miscalibrated {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            kind: self.kind,
            exact: false,
            deterministic: true,
            accelerated: true, // its reported latency is authoritative
            batch_aware: false,
        }
    }

    fn estimate(&self, _req: &QueryRequest) -> meloppr::core::Result<CostEstimate> {
        Ok(CostEstimate {
            latency_ns: self.predicted_ns,
            peak_memory_bytes: 1 << 10,
            expected_precision: self.precision,
        })
    }

    fn query_with(
        &self,
        _req: &QueryRequest,
        _ws: &mut QueryWorkspace,
    ) -> meloppr::core::Result<QueryOutcome> {
        Ok(QueryOutcome {
            ranking: vec![(0, 1.0)],
            stats: QueryStats {
                backend: self.kind,
                stages: Vec::new(),
                total_diffusions: 0,
                bfs_edges_scanned: 0,
                diffusion_edge_updates: 0,
                random_walk_steps: 0,
                nodes_touched: 0,
                peak_memory_bytes: 1 << 10,
                peak_task_memory_bytes: 1 << 10,
                aggregate_entries: 1,
                table_evictions: 0,
                memory_limited: false,
                precision_class: PrecisionClass::Exact64,
                latency_estimate_ns: Some(self.actual_ns),
                host_latency_ns: None,
            },
        })
    }
}

/// The fresh-boot router both halves of the restart tests build: a
/// "liar" (predicts 0.1 ms, actually runs 30 ms, high precision) and an
/// honest 4 ms backend. Under a 10 ms deadline a cold router trusts the
/// liar; a calibrated one must not.
fn fresh_router() -> Router<'static> {
    Router::new()
        .with_backend(Box::new(Miscalibrated {
            kind: BackendKind::Meloppr,
            precision: 0.95,
            predicted_ns: 1e5,
            actual_ns: 3e7,
        }))
        .with_backend(Box::new(Miscalibrated {
            kind: BackendKind::MonteCarlo,
            precision: 0.80,
            predicted_ns: 4e6,
            actual_ns: 4e6,
        }))
        .with_self_calibration(true)
}

fn deadline_req() -> QueryRequest {
    QueryRequest::new(0).with_max_latency_ms(10.0)
}

#[test]
fn warm_restart_routes_first_request_with_learned_calibration() {
    let path = scratch("calibration");

    // First life: traffic teaches the router that the liar's model is
    // off by ~300×, flipping deadline routing onto the honest backend.
    let first_life = fresh_router();
    assert_eq!(
        first_life.select(&deadline_req()).unwrap().kind,
        BackendKind::Meloppr,
        "a cold router should trust the miscalibrated model"
    );
    for _ in 0..12 {
        first_life.query_routed(&deadline_req()).unwrap();
    }
    assert_eq!(
        first_life.select(&deadline_req()).unwrap().kind,
        BackendKind::MonteCarlo,
        "calibration should have flipped the deadline route"
    );
    let (learned_ratio, learned_samples) = first_life.calibration_ratio(0);
    assert!(learned_ratio > 10.0);
    persist::save_state(&first_life, &path).unwrap();

    // Cold restart (no state file): the very first request repeats the
    // miscalibrated choice — this is the regression the file prevents.
    let cold = fresh_router();
    assert_eq!(
        cold.select(&deadline_req()).unwrap().kind,
        BackendKind::Meloppr
    );

    // Warm restart: the first post-restart request already routes with
    // the previous life's EWMAs.
    let warm = fresh_router();
    assert!(persist::load_state(&warm, &path).unwrap());
    let (ratio, samples) = warm.calibration_ratio(0);
    assert_eq!(ratio, learned_ratio);
    assert_eq!(samples, learned_samples);
    let first_request = warm.query_routed(&deadline_req()).unwrap();
    assert_eq!(first_request.0.kind, BackendKind::MonteCarlo);

    // Corrupt and version-mismatched files are ignored (warning only),
    // leaving whatever the router already knows untouched.
    std::fs::write(&path, "meloppr-state v999\ncalibration who knows\n").unwrap();
    assert!(!persist::load_state(&warm, &path).unwrap());
    std::fs::write(&path, b"\xff\xfe not even text").unwrap();
    assert!(!persist::load_state(&warm, &path).unwrap());
    assert_eq!(warm.calibration_ratio(0).0, learned_ratio);

    // A missing file is a silent first boot, not an error.
    let _ = std::fs::remove_file(&path);
    assert!(!persist::load_state(&warm, &path).unwrap());
}

#[test]
fn consumer_windows_round_trip_and_warm_the_estimate() {
    let path = scratch("consumer");
    let g = PaperGraph::G2Cora.generate_scaled(0.3, 7).unwrap();
    let ppr = PprParams::new(0.85, 4, 10).unwrap();
    let params = MelopprParams {
        ppr,
        stages: vec![2, 2],
        selection: SelectionStrategy::TopFraction(0.2),
        ..MelopprParams::paper_defaults()
    };
    let build = |params: &MelopprParams| {
        Router::new()
            .with_backend(Box::new(
                Meloppr::new(&g, params.clone())
                    .unwrap()
                    .with_shared_cache(Arc::new(ConcurrentSubgraphCache::with_budget(
                        CacheBudget::entries(64),
                    ))),
            ))
            .with_self_calibration(true)
    };

    // First life: repeated seeds fill the consumer's sliding window with
    // hits, so `estimate()` discounts the BFS stage.
    let first_life = build(&params);
    for _ in 0..4 {
        for seed in [3u32, 5, 7] {
            first_life.query_routed(&QueryRequest::new(seed)).unwrap();
        }
    }
    let saved = PersistedState::capture(&first_life);
    assert_eq!(
        saved.consumers.len(),
        1,
        "the staged backend has a consumer"
    );
    persist::save_state(&first_life, &path).unwrap();
    let warmed_estimate = first_life.backends()[0]
        .estimate(&QueryRequest::new(3))
        .unwrap()
        .latency_ns;

    // Second life, warm: the restored window reproduces the discounted
    // estimate before a single request is served...
    let warm = build(&params);
    assert!(persist::load_state(&warm, &path).unwrap());
    assert_eq!(PersistedState::capture(&warm), saved);
    let warm_estimate = warm.backends()[0]
        .estimate(&QueryRequest::new(3))
        .unwrap()
        .latency_ns;
    assert_eq!(warm_estimate, warmed_estimate);

    // ...while a cold twin still prices in the full BFS.
    let cold = build(&params);
    let cold_estimate = cold.backends()[0]
        .estimate(&QueryRequest::new(3))
        .unwrap()
        .latency_ns;
    assert!(
        warm_estimate < cold_estimate,
        "warm {warm_estimate} ns should undercut cold {cold_estimate} ns"
    );

    let _ = std::fs::remove_file(&path);
}
