//! Router integration tests: different budget hints must demonstrably
//! select different backends, and routed outcomes must match what the
//! chosen backend returns directly.

use meloppr::backend::{ExactPower, LocalPpr, Meloppr, MonteCarlo};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    BackendKind, CsrGraph, FpgaHybrid, HybridConfig, MelopprParams, PprParams, QueryRequest,
    Router, SelectionStrategy,
};

fn graph() -> CsrGraph {
    PaperGraph::G2Cora.generate_scaled(0.3, 7).unwrap()
}

fn staged(ppr: PprParams) -> MelopprParams {
    MelopprParams {
        ppr,
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    }
}

fn full_router(g: &CsrGraph, ppr: PprParams) -> Router<'_> {
    Router::new()
        .with_backend(Box::new(ExactPower::new(g, ppr).unwrap()))
        .with_backend(Box::new(LocalPpr::new(g, ppr).unwrap()))
        .with_backend(Box::new(MonteCarlo::new(g, ppr, 2000, 42).unwrap()))
        .with_backend(Box::new(Meloppr::new(g, staged(ppr)).unwrap()))
        .with_backend(Box::new(
            FpgaHybrid::new(g, staged(ppr), HybridConfig::default()).unwrap(),
        ))
}

#[test]
fn different_budgets_select_different_backends() {
    let g = graph();
    let ppr = PprParams::new(0.85, 6, 20).unwrap();
    let router = full_router(&g, ppr);

    // Exactness requirement -> an exact solver (full-graph or depth-L
    // ball; never Monte-Carlo, staged MeLoPPR at 5 % or the fixed-point
    // accelerator).
    let exact_route = router
        .select(&QueryRequest::new(0).with_min_precision(1.0))
        .unwrap();
    assert!(
        matches!(
            exact_route.kind,
            BackendKind::ExactPower | BackendKind::LocalPpr
        ),
        "exactness routed to {}",
        exact_route.kind
    );
    assert!(exact_route.fits_budget);

    // A tight memory budget (well under the depth-6 ball and the dense
    // vectors) -> a sub-ball or constant-space solver.
    let ball_bytes = router.backends()[1]
        .estimate(&QueryRequest::new(0))
        .unwrap()
        .peak_memory_bytes;
    let tight_memory = QueryRequest::new(0).with_max_memory_bytes(ball_bytes / 4);
    let memory_route = router.select(&tight_memory).unwrap();
    assert!(
        matches!(
            memory_route.kind,
            BackendKind::Meloppr | BackendKind::MonteCarlo | BackendKind::FpgaHybrid
        ),
        "tight memory routed to {}",
        memory_route.kind
    );
    assert_ne!(memory_route.kind, exact_route.kind);

    // A deadline set just above the cheapest backend's estimate -> the
    // router must pick something that fits it (whichever solver that is
    // on this graph).
    let cheapest_ns = router
        .backends()
        .iter()
        .map(|b| b.estimate(&QueryRequest::new(0)).unwrap().latency_ns)
        .fold(f64::INFINITY, f64::min);
    let deadline = QueryRequest::new(0).with_max_latency_ms(cheapest_ns * 1.1 / 1e6);
    let deadline_route = router.select(&deadline).unwrap();
    assert!(deadline_route.fits_budget);
    assert!(deadline_route.estimate.latency_ns <= cheapest_ns * 1.1);

    // Across the hints, at least two distinct backends — routing is
    // demonstrably budget-sensitive.
    let kinds = [exact_route.kind, memory_route.kind, deadline_route.kind];
    let distinct = kinds
        .iter()
        .map(|k| k.to_string())
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert!(distinct >= 2, "routing ignored budgets: {kinds:?}");
}

#[test]
fn routed_outcome_matches_selected_backend() {
    let g = graph();
    let ppr = PprParams::new(0.85, 6, 20).unwrap();
    let router = full_router(&g, ppr);
    for req in [
        QueryRequest::new(5),
        QueryRequest::new(5).with_min_precision(1.0),
        QueryRequest::new(5).with_max_memory_bytes(32 << 10),
    ] {
        let route = router.select(&req).unwrap();
        let via_router = router.query(&req).unwrap();
        let direct = router.backends()[route.index].query(&req).unwrap();
        assert_eq!(via_router, direct);
        assert_eq!(via_router.stats.backend, route.kind);
    }
}

#[test]
fn router_batch_routes_per_request() {
    let g = graph();
    let ppr = PprParams::new(0.85, 6, 10).unwrap();
    let router = full_router(&g, ppr);
    let ball_bytes = router.backends()[1]
        .estimate(&QueryRequest::new(2))
        .unwrap()
        .peak_memory_bytes;
    let reqs = vec![
        QueryRequest::new(1).with_min_precision(1.0),
        QueryRequest::new(2).with_max_memory_bytes(ball_bytes / 4),
    ];
    let outcomes = router.query_batch(&reqs).unwrap();
    assert_eq!(outcomes.len(), 2);
    let kinds: Vec<BackendKind> = reqs
        .iter()
        .map(|r| router.select(r).unwrap().kind)
        .collect();
    assert_ne!(kinds[0], kinds[1], "batch routing collapsed to one backend");
    for (outcome, kind) in outcomes.iter().zip(kinds) {
        assert_eq!(outcome.stats.backend, kind);
    }
}

#[test]
fn prepared_router_still_routes_and_serves() {
    let g = graph();
    let ppr = PprParams::new(0.85, 6, 10).unwrap();
    let mut router = full_router(&g, ppr);
    router.prepare().unwrap();
    let outcome = router.query(&QueryRequest::new(3)).unwrap();
    assert_eq!(outcome.ranking.len(), 10);
}
