//! Router integration tests: different budget hints must demonstrably
//! select different backends, routed outcomes must match what the
//! chosen backend returns directly, and latency self-calibration must
//! converge routing onto solvers that actually meet their deadlines.

use meloppr::backend::{ExactPower, LocalPpr, Meloppr, MonteCarlo};
use meloppr::core::backend::{BackendCaps, CostEstimate};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    BackendKind, CsrGraph, FpgaHybrid, HybridConfig, MelopprParams, PprBackend, PprParams,
    PrecisionClass, QueryOutcome, QueryRequest, QueryStats, QueryWorkspace, Router,
    SelectionStrategy,
};

fn graph() -> CsrGraph {
    PaperGraph::G2Cora.generate_scaled(0.3, 7).unwrap()
}

fn staged(ppr: PprParams) -> MelopprParams {
    MelopprParams {
        ppr,
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    }
}

fn full_router(g: &CsrGraph, ppr: PprParams) -> Router<'_> {
    Router::new()
        .with_backend(Box::new(ExactPower::new(g, ppr).unwrap()))
        .with_backend(Box::new(LocalPpr::new(g, ppr).unwrap()))
        .with_backend(Box::new(MonteCarlo::new(g, ppr, 2000, 42).unwrap()))
        .with_backend(Box::new(Meloppr::new(g, staged(ppr)).unwrap()))
        .with_backend(Box::new(
            FpgaHybrid::new(g, staged(ppr), HybridConfig::default()).unwrap(),
        ))
}

#[test]
fn different_budgets_select_different_backends() {
    let g = graph();
    let ppr = PprParams::new(0.85, 6, 20).unwrap();
    let router = full_router(&g, ppr);

    // Exactness requirement -> an exact solver (full-graph or depth-L
    // ball; never Monte-Carlo, staged MeLoPPR at 5 % or the fixed-point
    // accelerator).
    let exact_route = router
        .select(&QueryRequest::new(0).with_min_precision(1.0))
        .unwrap();
    assert!(
        matches!(
            exact_route.kind,
            BackendKind::ExactPower | BackendKind::LocalPpr
        ),
        "exactness routed to {}",
        exact_route.kind
    );
    assert!(exact_route.fits_budget);

    // A tight memory budget (well under the depth-6 ball and the dense
    // vectors) -> a sub-ball or constant-space solver.
    let ball_bytes = router.backends()[1]
        .estimate(&QueryRequest::new(0))
        .unwrap()
        .peak_memory_bytes;
    let tight_memory = QueryRequest::new(0).with_max_memory_bytes(ball_bytes / 4);
    let memory_route = router.select(&tight_memory).unwrap();
    assert!(
        matches!(
            memory_route.kind,
            BackendKind::Meloppr | BackendKind::MonteCarlo | BackendKind::FpgaHybrid
        ),
        "tight memory routed to {}",
        memory_route.kind
    );
    assert_ne!(memory_route.kind, exact_route.kind);

    // A deadline set just above the cheapest backend's estimate -> the
    // router must pick something that fits it (whichever solver that is
    // on this graph).
    let cheapest_ns = router
        .backends()
        .iter()
        .map(|b| b.estimate(&QueryRequest::new(0)).unwrap().latency_ns)
        .fold(f64::INFINITY, f64::min);
    let deadline = QueryRequest::new(0).with_max_latency_ms(cheapest_ns * 1.1 / 1e6);
    let deadline_route = router.select(&deadline).unwrap();
    assert!(deadline_route.fits_budget);
    assert!(deadline_route.estimate.latency_ns <= cheapest_ns * 1.1);

    // Across the hints, at least two distinct backends — routing is
    // demonstrably budget-sensitive.
    let kinds = [exact_route.kind, memory_route.kind, deadline_route.kind];
    let distinct = kinds
        .iter()
        .map(|k| k.to_string())
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert!(distinct >= 2, "routing ignored budgets: {kinds:?}");
}

#[test]
fn routed_outcome_matches_selected_backend() {
    let g = graph();
    let ppr = PprParams::new(0.85, 6, 20).unwrap();
    let router = full_router(&g, ppr);
    for req in [
        QueryRequest::new(5),
        QueryRequest::new(5).with_min_precision(1.0),
        QueryRequest::new(5).with_max_memory_bytes(32 << 10),
    ] {
        let route = router.select(&req).unwrap();
        let via_router = router.query(&req).unwrap();
        let direct = router.backends()[route.index].query(&req).unwrap();
        assert_eq!(via_router, direct);
        assert_eq!(via_router.stats.backend, route.kind);
    }
}

#[test]
fn router_batch_routes_per_request() {
    let g = graph();
    let ppr = PprParams::new(0.85, 6, 10).unwrap();
    let router = full_router(&g, ppr);
    let ball_bytes = router.backends()[1]
        .estimate(&QueryRequest::new(2))
        .unwrap()
        .peak_memory_bytes;
    let reqs = vec![
        QueryRequest::new(1).with_min_precision(1.0),
        QueryRequest::new(2).with_max_memory_bytes(ball_bytes / 4),
    ];
    let outcomes = router.query_batch(&reqs).unwrap();
    assert_eq!(outcomes.len(), 2);
    let kinds: Vec<BackendKind> = reqs
        .iter()
        .map(|r| router.select(r).unwrap().kind)
        .collect();
    assert_ne!(kinds[0], kinds[1], "batch routing collapsed to one backend");
    for (outcome, kind) in outcomes.iter().zip(kinds) {
        assert_eq!(outcome.stats.backend, kind);
    }
}

/// A mock solver whose static latency model is wrong by a configurable
/// factor: `estimate` predicts `predicted_ns`, but served queries report
/// `actual_ns` — the situation self-calibration exists for.
struct Miscalibrated {
    kind: BackendKind,
    precision: f64,
    predicted_ns: f64,
    actual_ns: f64,
}

impl PprBackend for Miscalibrated {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            kind: self.kind,
            exact: false,
            deterministic: true,
            accelerated: true, // its reported latency is authoritative
            batch_aware: false,
        }
    }

    fn estimate(&self, _req: &QueryRequest) -> meloppr::core::Result<CostEstimate> {
        Ok(CostEstimate {
            latency_ns: self.predicted_ns,
            peak_memory_bytes: 1 << 10,
            expected_precision: self.precision,
        })
    }

    fn query_with(
        &self,
        _req: &QueryRequest,
        _ws: &mut QueryWorkspace,
    ) -> meloppr::core::Result<QueryOutcome> {
        Ok(QueryOutcome {
            ranking: vec![(0, 1.0)],
            stats: QueryStats {
                backend: self.kind,
                stages: Vec::new(),
                total_diffusions: 0,
                bfs_edges_scanned: 0,
                diffusion_edge_updates: 0,
                random_walk_steps: 0,
                nodes_touched: 0,
                peak_memory_bytes: 1 << 10,
                peak_task_memory_bytes: 1 << 10,
                aggregate_entries: 1,
                table_evictions: 0,
                memory_limited: false,
                precision_class: PrecisionClass::Exact64,
                latency_estimate_ns: Some(self.actual_ns),
                host_latency_ns: None,
            },
        })
    }
}

#[test]
fn self_calibration_converges_budgeted_routing() {
    // Backend A: high precision, but its model overestimates latency by
    // 10^5 (predicts 1 s, actually runs in 10 µs). Backend B: honest
    // model, lower precision, 100 µs.
    let router = Router::new()
        .with_backend(Box::new(Miscalibrated {
            kind: BackendKind::FpgaHybrid,
            precision: 0.99,
            predicted_ns: 1e9,
            actual_ns: 1e4,
        }))
        .with_backend(Box::new(Miscalibrated {
            kind: BackendKind::MonteCarlo,
            precision: 0.5,
            predicted_ns: 1e5,
            actual_ns: 1e5,
        }))
        .with_self_calibration(true);

    // A 1 ms deadline initially routes AWAY from A (its model claims 1 s).
    let budgeted = QueryRequest::new(0).with_max_latency_ms(1.0);
    let before = router.select(&budgeted).unwrap();
    assert_eq!(before.kind, BackendKind::MonteCarlo);
    assert!(before.fits_budget);

    // Unconstrained traffic prefers A's precision and thereby observes
    // its true latency; the EWMA learns the 10^-5 correction.
    for _ in 0..4 {
        let outcome = router.query(&QueryRequest::new(0)).unwrap();
        assert_eq!(outcome.stats.backend, BackendKind::FpgaHybrid);
    }
    let (ratio, samples) = router.calibration_ratio(0);
    assert_eq!(samples, 4);
    assert!(ratio < 1e-4, "EWMA did not converge: {ratio}");

    // The same budgeted request now routes TO A: its calibrated estimate
    // (~10 µs) fits the deadline and its precision wins the tie-break.
    let after = router.select(&budgeted).unwrap();
    assert_eq!(after.kind, BackendKind::FpgaHybrid);
    assert!(after.fits_budget);
    assert!(
        after.estimate.latency_ns < 1e6,
        "calibrated estimate still over budget: {}",
        after.estimate.latency_ns
    );

    // Repeated budgeted queries stay converged (observations keep
    // confirming the ratio rather than oscillating).
    for _ in 0..3 {
        let outcome = router.query(&budgeted).unwrap();
        assert_eq!(outcome.stats.backend, BackendKind::FpgaHybrid);
    }
}

#[test]
fn calibration_off_by_default_leaves_estimates_alone() {
    let router = Router::new().with_backend(Box::new(Miscalibrated {
        kind: BackendKind::FpgaHybrid,
        precision: 0.9,
        predicted_ns: 1e9,
        actual_ns: 1e4,
    }));
    for _ in 0..3 {
        router.query(&QueryRequest::new(0)).unwrap();
    }
    // No calibration: the ratio never moves and selection still trusts
    // the (wrong) static model.
    assert_eq!(router.calibration_ratio(0), (1.0, 0));
    let route = router
        .select(&QueryRequest::new(0).with_max_latency_ms(1.0))
        .unwrap();
    assert!(!route.fits_budget);
}

#[test]
fn prepared_router_still_routes_and_serves() {
    let g = graph();
    let ppr = PprParams::new(0.85, 6, 10).unwrap();
    let mut router = full_router(&g, ppr);
    router.prepare().unwrap();
    let outcome = router.query(&QueryRequest::new(3)).unwrap();
    assert_eq!(outcome.ranking.len(), 10);
}
