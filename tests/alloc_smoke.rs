//! Counting-allocator smoke test for the zero-allocation query path.
//!
//! Wraps the system allocator in an allocation counter and asserts that
//! steady-state `Meloppr::query` calls — after a warm-up pass has grown
//! every workspace buffer — perform at most a small constant number of
//! heap allocations, independent of ball size: only the returned
//! `QueryOutcome`'s own vectors (ranking, per-stage stats, trace) are
//! allocated per query; the hot path (BFS, sub-graph extraction,
//! diffusion, selection, aggregation) runs entirely out of the pooled
//! [`QueryWorkspace`]. A fresh-workspace query on the same seed must
//! allocate many times more, proving the reuse is real.
//!
//! This file contains exactly one test so no concurrent test thread
//! perturbs the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use meloppr::backend::Meloppr;
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    MelopprParams, PprBackend, PprParams, PrecisionClass, QueryRequest, QueryWorkspace,
    SelectionStrategy,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth realloc is an allocator round trip; charge it.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Steady-state queries may allocate at most this many times each —
/// enough for the returned outcome's own vectors plus slack, and far
/// below the thousands a cold query performs on this graph.
const STEADY_STATE_ALLOCS_PER_QUERY: usize = 64;

#[test]
fn steady_state_queries_allocate_approximately_nothing() {
    // The fault-injection seams (`cache.extract`, `ball.diffuse`, …) sit
    // on this exact hot path; a default build must compile them to
    // no-ops. The steady-state budget below then proves they cost zero
    // allocations — a single format!-built dynamic failpoint name per
    // query would blow it.
    #[cfg(not(feature = "failpoints"))]
    const {
        assert!(
            !meloppr::core::failpoint::ACTIVE,
            "failpoints must be compiled out of default builds"
        );
    }

    let g = PaperGraph::G2Cora.generate_scaled(0.3, 5).unwrap();
    let params = MelopprParams {
        ppr: PprParams::new(0.85, 6, 20).unwrap(),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.1),
        ..MelopprParams::paper_defaults()
    };
    let backend = Meloppr::new(&g, params).unwrap();
    let seeds = [0u32, 7, 19, 4];

    // Warm-up: two passes grow every pooled buffer to its steady size.
    for _ in 0..2 {
        for &s in &seeds {
            backend.query(&QueryRequest::new(s)).unwrap();
        }
    }

    // Steady state: the pooled workspace serves every query.
    const ROUNDS: usize = 5;
    let mut outcomes = Vec::new();
    let steady = count_allocations(|| {
        for _ in 0..ROUNDS {
            for &s in &seeds {
                outcomes.push(backend.query(&QueryRequest::new(s)).unwrap());
            }
        }
    });
    let queries = ROUNDS * seeds.len();
    let steady_per_query = steady / queries;

    // Cold reference: the same queries through fresh workspaces.
    let mut cold_outcomes = Vec::new();
    let cold = count_allocations(|| {
        for &s in &seeds {
            cold_outcomes.push(
                backend
                    .query_with(&QueryRequest::new(s), &mut QueryWorkspace::new())
                    .unwrap(),
            );
        }
    });
    let cold_per_query = cold / seeds.len();

    assert!(
        steady_per_query <= STEADY_STATE_ALLOCS_PER_QUERY,
        "steady-state query allocates too much: {steady_per_query} allocations/query \
         (budget {STEADY_STATE_ALLOCS_PER_QUERY}, cold path does {cold_per_query})"
    );
    assert!(
        cold_per_query >= 5 * steady_per_query.max(1),
        "workspace reuse is not paying off: cold {cold_per_query} vs steady {steady_per_query}"
    );

    // The allocation discipline must not change answers.
    for chunk in outcomes.chunks(seeds.len()) {
        assert_eq!(chunk, &cold_outcomes[..], "steady outcomes diverged");
    }

    // The quantized rungs share the discipline: each width's dense
    // scratch ([`QuantScratch`]) grows once during warm-up, after which
    // narrow queries obey the same per-query ceiling as exact ones.
    let classes = [PrecisionClass::Fast32, PrecisionClass::Fixed(16)];
    for _ in 0..2 {
        for &s in &seeds {
            for class in classes {
                backend
                    .query(&QueryRequest::new(s).with_precision(class))
                    .unwrap();
            }
        }
    }
    let mut quant_outcomes = Vec::new();
    let quant_steady = count_allocations(|| {
        for _ in 0..ROUNDS {
            for &s in &seeds {
                for class in classes {
                    quant_outcomes.push(
                        backend
                            .query(&QueryRequest::new(s).with_precision(class))
                            .unwrap(),
                    );
                }
            }
        }
    });
    let quant_per_query = quant_steady / (queries * classes.len());
    assert!(
        quant_per_query <= STEADY_STATE_ALLOCS_PER_QUERY,
        "steady-state quantized query allocates too much: {quant_per_query} \
         allocations/query (budget {STEADY_STATE_ALLOCS_PER_QUERY})"
    );
    // Every quantized outcome reports the rung it executed.
    for (i, outcome) in quant_outcomes.iter().enumerate() {
        assert_eq!(outcome.stats.precision_class, classes[i % classes.len()]);
    }
}
