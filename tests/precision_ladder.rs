//! Precision-ladder suite: the quantized host rungs must keep the
//! ranking fidelity their router-facing model promises.
//!
//! Three contracts pinned here, all referenced from the `quantized`
//! module docs:
//!
//! 1. **Measured ≥ predicted, everywhere.** For every precision class,
//!    across an alpha / walk-length / stage-depth sweep, the measured
//!    `precision_at_k` of the quantized ranking against the Exact64
//!    ranking of the *same* staged configuration is at least the
//!    class's [`PrecisionClass::precision_factor`] — the multiplicative
//!    penalty `estimate()` applies. The router's `min_precision` gate
//!    must never be optimistic.
//! 2. **The deployed rungs clear the 0.95 floor.** `Fast32` and
//!    `Fixed(DEFAULT_FIXED_Q = 16)` — the two rungs deadline admission
//!    actually degrades to — keep `precision_at_k(200) ≥ 0.95`.
//! 3. **`estimate()` prices the ladder monotonically**: walking
//!    `exact → f32 → q16` never increases predicted latency, predicted
//!    peak memory, or expected precision, and under a byte budget the
//!    planner narrows the rung *before* it shrinks ball depth.

use meloppr::backend::Meloppr;
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    precision_at_k, CsrGraph, MelopprParams, PprBackend, PprParams, PrecisionClass, QueryBudget,
    QueryRequest, SelectionStrategy,
};

const K: usize = 200;

fn fixture() -> CsrGraph {
    // Big enough that a top-200 ranking is meaningful, small enough to
    // sweep: a half-scale citeseer-like corpus graph.
    PaperGraph::G1Citeseer.generate_scaled(0.5, 13).unwrap()
}

fn staged(alpha: f64, stages: &[usize]) -> MelopprParams {
    let length: usize = stages.iter().sum();
    MelopprParams {
        ppr: PprParams::new(alpha, length, K).unwrap(),
        stages: stages.to_vec(),
        selection: SelectionStrategy::TopFraction(0.05),
        ..MelopprParams::paper_defaults()
    }
}

/// Every class the ladder can execute, with its display label.
fn classes() -> Vec<PrecisionClass> {
    vec![
        PrecisionClass::Fast32,
        PrecisionClass::Fixed(20),
        PrecisionClass::Fixed(16),
        PrecisionClass::Fixed(12),
        PrecisionClass::Fixed(8),
    ]
}

#[test]
fn measured_precision_meets_the_predicted_factor_across_sweeps() {
    let g = fixture();
    let seeds = [0u32, 3, 17];
    for &alpha in &[0.7, 0.85, 0.95] {
        for stages in [&[2usize, 2][..], &[3, 3][..]] {
            let backend = Meloppr::new(&g, staged(alpha, stages)).unwrap();
            for &seed in &seeds {
                let exact = backend.query(&QueryRequest::new(seed)).unwrap().ranking;
                for class in classes() {
                    let outcome = backend
                        .query(&QueryRequest::new(seed).with_precision(class))
                        .unwrap();
                    assert_eq!(
                        outcome.stats.precision_class, class,
                        "executed class must be the requested rung"
                    );
                    let measured = precision_at_k(&outcome.ranking, &exact, K);
                    let predicted = class.precision_factor();
                    assert!(
                        measured >= predicted,
                        "{class} at alpha={alpha} stages={stages:?} seed={seed}: \
                         measured precision@{K} {measured:.4} fell below the \
                         estimate's factor {predicted:.2} — the router would \
                         admit optimistically"
                    );
                }
            }
        }
    }
}

#[test]
fn deployed_rungs_clear_the_serving_floor() {
    let g = fixture();
    let backend = Meloppr::new(&g, staged(0.85, &[3, 3])).unwrap();
    // The two rungs deadline admission degrades to (PrecisionClass::degraded).
    let ladder = [
        PrecisionClass::Fast32,
        PrecisionClass::Fixed(meloppr::core::quantized::DEFAULT_FIXED_Q),
    ];
    for &seed in &[0u32, 3, 17, 42] {
        let exact = backend.query(&QueryRequest::new(seed)).unwrap().ranking;
        for class in ladder {
            let quant = backend
                .query(&QueryRequest::new(seed).with_precision(class))
                .unwrap()
                .ranking;
            let p = precision_at_k(&quant, &exact, K);
            assert!(
                p >= 0.95,
                "{class} seed={seed}: precision@{K} {p:.4} < 0.95 serving floor"
            );
        }
    }
}

#[test]
fn estimate_prices_the_ladder_monotonically() {
    let g = fixture();
    let backend = Meloppr::new(&g, staged(0.85, &[3, 3])).unwrap();
    let est_for = |class: Option<PrecisionClass>| {
        let mut req = QueryRequest::new(0);
        if let Some(class) = class {
            req = req.with_precision(class);
        }
        backend.estimate(&req).unwrap()
    };
    let exact = est_for(None);
    let f32e = est_for(Some(PrecisionClass::Fast32));
    let q16e = est_for(Some(PrecisionClass::Fixed(16)));
    // Walking down the ladder never increases any predicted cost.
    for (label, narrow) in [("f32", &f32e), ("q16", &q16e)] {
        assert!(
            narrow.latency_ns <= exact.latency_ns,
            "{label}: predicted latency rose down the ladder"
        );
        assert!(
            narrow.peak_memory_bytes <= exact.peak_memory_bytes,
            "{label}: predicted peak memory rose down the ladder"
        );
        assert!(
            narrow.expected_precision <= exact.expected_precision + 1e-12,
            "{label}: expected precision rose down the ladder"
        );
    }
    // The class penalty is exactly the documented factor (no budget, so
    // the requested rung passes through the planner untouched).
    for (class, narrow) in [
        (PrecisionClass::Fast32, &f32e),
        (PrecisionClass::Fixed(16), &q16e),
    ] {
        let want = exact.expected_precision * class.precision_factor();
        assert!(
            (narrow.expected_precision - want).abs() < 1e-9,
            "{class}: expected_precision {:.6} != exact * factor {want:.6}",
            narrow.expected_precision
        );
    }
    // Narrow score arrays genuinely shrink the modelled working set.
    assert!(
        f32e.peak_memory_bytes < exact.peak_memory_bytes,
        "f32 must model a smaller working set than exact"
    );
}

#[test]
fn byte_budget_narrows_the_rung_before_depth() {
    let g = fixture();
    let backend = Meloppr::new(&g, staged(0.85, &[3, 3])).unwrap();
    let unbudgeted = backend.estimate(&QueryRequest::new(0)).unwrap();
    // A budget just below the exact working set: narrowing the score
    // width alone reclaims enough bytes, so the planner must degrade
    // the class and keep the full ball depth rather than truncate.
    let budget = QueryBudget {
        max_memory_bytes: Some(unbudgeted.peak_memory_bytes - 1),
        ..QueryBudget::default()
    };
    let outcome = backend
        .query(&QueryRequest::new(0).with_budget(budget))
        .unwrap();
    assert_ne!(
        outcome.stats.precision_class,
        PrecisionClass::Exact64,
        "a sub-exact byte budget must narrow the rung"
    );
    // Width-first degradation preserves most ranking fidelity. (The
    // budgeted loop may still shave some ball depth at run time as the
    // aggregation state grows, so the floor here is looser than the
    // width-only 0.95 serving floor.)
    let exact = backend.query(&QueryRequest::new(0)).unwrap().ranking;
    let p = precision_at_k(&outcome.ranking, &exact, K);
    assert!(
        p >= 0.85,
        "width-degraded budget run lost ranking fidelity: precision@{K} {p:.4}"
    );
    // And the estimate under the same budget stays within the bound.
    let est = backend
        .estimate(&QueryRequest::new(0).with_budget(budget))
        .unwrap();
    assert!(
        est.peak_memory_bytes < unbudgeted.peak_memory_bytes,
        "budgeted estimate exceeds the byte bound it was given"
    );
}
