//! Two-tier ball store suite — run in release mode by CI next to the
//! cache and memory-budget smokes.
//!
//! The tiered store's contract has three legs, each pinned here:
//!
//! * **Fidelity** — a ball served from the persisted index is the same
//!   ball a fresh BFS would extract: exhaustively at the record level,
//!   and end-to-end as bit-identical rankings across all five backends
//!   (only the staged backend consults the ball cache; the sweep pins
//!   that attaching a cold tier changes *no* backend's answers).
//! * **The beyond-RAM win** — under a byte budget capped at ¼ of the
//!   summed ball bytes, Zipf traffic served through the tiered store
//!   stays bit-identical to uncached sequential execution while doing
//!   ≥ 4× fewer BFS extractions than the RAM-only cache under the same
//!   budget (the ISSUE-10 acceptance criterion).
//! * **Segmentation** — a hub query whose working set exceeds the query
//!   byte budget completes at *full* effective depth in
//!   frontier-contiguous pieces: `memory_limited` stays clear and the
//!   ranking matches the unbudgeted run within decomposition rounding.
//!
//! A proptest round-trips the ball codec (extract → compact → wire →
//! compact → full) over random graphs.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use meloppr::backend::{BatchExecutor, ExactPower, LocalPpr, Meloppr, MonteCarlo};
use meloppr::core::ballindex::{decode_record, encode_record};
use meloppr::graph::generators::{self, corpus::PaperGraph};
use meloppr::{
    bfs_ball, build_index, BallIndex, CacheBudget, CompactBall, ConcurrentSubgraphCache, CsrGraph,
    FpgaHybrid, GraphView, HybridConfig, MelopprParams, NodeId, PprBackend, PprParams,
    QueryRequest, Ranking, SelectionStrategy, Subgraph,
};
use meloppr_bench::sample_zipf_queries;

fn staged_params() -> MelopprParams {
    MelopprParams {
        ppr: PprParams::new(0.85, 6, 20).unwrap(),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopCount(4),
        ..MelopprParams::paper_defaults()
    }
}

/// A scratch index file under the OS temp dir, removed on drop so a
/// failing assertion does not leak files between runs.
struct TempIndex(PathBuf);

impl TempIndex {
    fn new(tag: &str) -> Self {
        TempIndex(std::env::temp_dir().join(format!("meloppr-tiered-{tag}-{}", std::process::id())))
    }
}

impl Drop for TempIndex {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Replicates `meloppr-core`'s test-only ranking-equivalence helper:
/// decomposed evaluation (Eq. 8) rounds differently from direct
/// evaluation, so exactly-tied nodes may swap at the k-th boundary.
/// Checks: same length, pairwise score profile within `tol`, and any
/// node present in only one ranking ties the other's boundary score.
fn assert_ranking_equiv(a: &Ranking, b: &Ranking, tol: f64) {
    assert_eq!(a.len(), b.len(), "ranking lengths differ: {a:?} vs {b:?}");
    for (i, (&(_, sa), &(_, sb))) in a.iter().zip(b).enumerate() {
        assert!(
            (sa - sb).abs() <= tol,
            "position {i}: score profile differs ({sa} vs {sb})"
        );
    }
    let a_ids: std::collections::HashSet<_> = a.iter().map(|&(v, _)| v).collect();
    let b_ids: std::collections::HashSet<_> = b.iter().map(|&(v, _)| v).collect();
    let a_boundary = a.last().map_or(0.0, |&(_, s)| s);
    let b_boundary = b.last().map_or(0.0, |&(_, s)| s);
    for &(v, s) in a {
        if !b_ids.contains(&v) {
            assert!(
                (s - b_boundary).abs() <= tol,
                "node {v} (score {s}) only in first ranking and not a boundary tie"
            );
        }
    }
    for &(v, s) in b {
        if !a_ids.contains(&v) {
            assert!(
                (s - a_boundary).abs() <= tol,
                "node {v} (score {s}) only in second ranking and not a boundary tie"
            );
        }
    }
}

/// Record-level fidelity, exhaustively: every ball the index holds must
/// decode to exactly the compact form of a fresh BFS extraction, and
/// every absent node must be one the builder reported skipped.
#[test]
fn every_index_record_matches_fresh_extraction() {
    let g = PaperGraph::G2Cora.generate_scaled(0.2, 11).unwrap();
    let depth = 3u32;
    let tmp = TempIndex::new("exhaustive");
    let report = build_index(&g, depth, &tmp.0).unwrap();
    assert_eq!(report.nodes_indexed + report.nodes_skipped, g.num_nodes());

    let index = BallIndex::open(&tmp.0).unwrap();
    assert_eq!(index.depth(), depth);
    assert_eq!(index.num_nodes(), g.num_nodes());

    let mut buf = Vec::new();
    let mut held = 0usize;
    for node in 0..g.num_nodes() as NodeId {
        let ball = bfs_ball(&g, node, depth).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        let fresh = CompactBall::from_subgraph(&sub);
        let from_disk = index.read_ball(node, depth, &mut buf).unwrap();
        match (fresh, from_disk) {
            (Some(fresh), Some(disk)) => {
                assert_eq!(disk, fresh, "node {node}: disk record diverged");
                held += 1;
            }
            (None, None) => {} // ball too large for u16 local ids: skipped
            (fresh, disk) => panic!(
                "node {node}: index holds {} but fresh extraction compresses {}",
                disk.is_some(),
                fresh.is_some()
            ),
        }
        // Wrong depth is always a miss, never an error.
        assert!(index
            .read_ball(node, depth + 1, &mut buf)
            .unwrap()
            .is_none());
    }
    assert_eq!(held, report.nodes_indexed);
}

/// End-to-end fidelity across all five backends: with the staged
/// backend's shared cache serving RAM misses from the cold tier, every
/// backend's rankings stay bit-identical to its cold-tier-free baseline.
/// Only MeLoPPR consults the ball cache — the four others pin that the
/// tier's presence in the serving topology is invisible to them.
#[test]
fn cold_tier_is_bit_identical_across_all_five_backends() {
    let g = PaperGraph::G2Cora.generate_scaled(0.2, 11).unwrap();
    let ppr = PprParams::new(0.85, 6, 15).unwrap();
    let staged = MelopprParams {
        ppr,
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.1),
        ..MelopprParams::paper_defaults()
    };
    let tmp = TempIndex::new("five-backends");
    build_index(&g, 3, &tmp.0).unwrap();
    let index = Arc::new(BallIndex::open(&tmp.0).unwrap());

    let cache = Arc::new(
        ConcurrentSubgraphCache::with_budget(CacheBudget::entries(512))
            .with_cold_tier(Arc::clone(&index)),
    );
    let tiered = Meloppr::new(&g, staged.clone())
        .unwrap()
        .with_shared_cache(Arc::clone(&cache));

    // (backend name, cold-tier-free baseline, same backend in the
    // cold-tier topology).
    type Sweep<'g> = Vec<(
        &'static str,
        Box<dyn PprBackend + 'g>,
        Box<dyn PprBackend + 'g>,
    )>;
    let seeds = [0u32, 1, 7, 42];
    let baselines: Sweep = vec![
        (
            "exact-power",
            Box::new(ExactPower::new(&g, ppr).unwrap()),
            Box::new(ExactPower::new(&g, ppr).unwrap()),
        ),
        (
            "local-ppr",
            Box::new(LocalPpr::new(&g, ppr).unwrap()),
            Box::new(LocalPpr::new(&g, ppr).unwrap()),
        ),
        (
            "monte-carlo",
            Box::new(MonteCarlo::new(&g, ppr, 3000, 42).unwrap()),
            Box::new(MonteCarlo::new(&g, ppr, 3000, 42).unwrap()),
        ),
        (
            "meloppr",
            Box::new(Meloppr::new(&g, staged.clone()).unwrap()),
            Box::new(tiered),
        ),
        (
            "fpga-hybrid",
            Box::new(FpgaHybrid::new(&g, staged.clone(), HybridConfig::default()).unwrap()),
            Box::new(FpgaHybrid::new(&g, staged, HybridConfig::default()).unwrap()),
        ),
    ];
    for (name, baseline, with_tier) in &baselines {
        for &seed in &seeds {
            let want = baseline.query(&QueryRequest::new(seed)).unwrap().ranking;
            let got = with_tier.query(&QueryRequest::new(seed)).unwrap().ranking;
            assert_eq!(
                got, want,
                "{name} seed {seed}: cold tier changed the answer"
            );
        }
    }

    // The staged backend really was served from disk: every RAM miss
    // became a cold hit (the index holds every depth-3 ball and
    // unbudgeted plans run at the stage depth), so no BFS ran at all.
    let stats = cache.stats();
    assert!(stats.cold_hits > 0, "no cold hits: the tier never engaged");
    assert!(stats.cold_bytes_read > 0);
    assert_eq!(stats.extractions, 0, "a RAM miss fell through to BFS");
    assert_eq!(stats.cold_fallbacks, 0);
}

/// The ISSUE-10 acceptance criterion: Zipf traffic under a cache byte
/// budget capped at ¼ of the summed ball bytes must (a) stay
/// bit-identical to uncached sequential execution and (b) do ≥ 4× fewer
/// BFS extractions than the RAM-only cache under the same budget.
#[test]
fn zipf_traffic_under_quarter_budget_cuts_extractions_four_fold() {
    let g = PaperGraph::G1Citeseer.generate_scaled(0.3, 42).unwrap();
    let tmp = TempIndex::new("zipf");
    let report = build_index(&g, 3, &tmp.0).unwrap();
    assert!(report.ball_bytes > 0);
    // ¼ of the summed *compact* ball bytes — at most ¼ of what the
    // resident (full) representations would occupy.
    let budget = (report.ball_bytes / 4).max(1);

    let queries = 192usize;
    let mix = sample_zipf_queries(&g, queries, 24, 1.0, 42);
    let reqs: Vec<QueryRequest> = mix.iter().map(|&s| QueryRequest::new(s)).collect();

    // Ground truth: the uncached sequential path.
    let uncached = Meloppr::new(&g, staged_params()).unwrap();
    let expected: Vec<_> = reqs.iter().map(|r| uncached.query(r).unwrap()).collect();

    // RAM-only cache under the byte budget: misses re-extract by BFS.
    let ram_cache = Arc::new(ConcurrentSubgraphCache::with_budget(CacheBudget::bytes(
        budget,
    )));
    let ram_backend = Meloppr::new(&g, staged_params())
        .unwrap()
        .with_shared_cache(Arc::clone(&ram_cache));
    let ram_batch = BatchExecutor::new(4)
        .unwrap()
        .run(&ram_backend, &reqs)
        .unwrap();
    let ram_extractions = ram_cache.stats().extractions;
    assert!(
        ram_cache.stats().evictions > 0,
        "¼ of the ball bytes must force the RAM tier to evict"
    );

    // Tiered cache under the *same* byte budget: misses read the index.
    let index = Arc::new(BallIndex::open(&tmp.0).unwrap());
    let tiered_cache = Arc::new(
        ConcurrentSubgraphCache::with_budget(CacheBudget::bytes(budget))
            .with_cold_tier(Arc::clone(&index)),
    );
    let tiered_backend = Meloppr::new(&g, staged_params())
        .unwrap()
        .with_shared_cache(Arc::clone(&tiered_cache));
    let tiered_batch = BatchExecutor::new(4)
        .unwrap()
        .run(&tiered_backend, &reqs)
        .unwrap();
    let tiered_stats = tiered_cache.stats();

    // (a) Bit-identical to uncached sequential execution — both tiers.
    for ((ram, tiered), want) in ram_batch
        .outcomes
        .iter()
        .zip(&tiered_batch.outcomes)
        .zip(&expected)
    {
        assert_eq!(ram.ranking, want.ranking);
        assert_eq!(tiered.ranking, want.ranking);
        assert_eq!(tiered.stats.total_diffusions, want.stats.total_diffusions);
    }

    // (b) ≥ 4× fewer warm-traffic BFS extractions than RAM-only.
    assert!(tiered_stats.cold_hits > 0, "the cold tier never served");
    assert!(
        ram_extractions >= 4 * tiered_stats.extractions.max(1),
        "tiered store saved too little: {ram_extractions} RAM-only extractions \
         vs {} tiered",
        tiered_stats.extractions
    );
    // Both stores honoured the byte budget while doing it.
    assert!(ram_cache.resident_bytes() <= budget);
    assert!(tiered_cache.resident_bytes() <= budget);
}

/// Segmentation completes a hub query at full effective depth under a
/// byte budget that previously forced `memory_limited` depth shrinking:
/// the flag stays clear and the ranking matches the unbudgeted run
/// within decomposition rounding (`SelectionStrategy::All` makes the
/// equivalence provable — Eq. 8 with full handoff).
#[test]
fn segmented_hub_query_completes_full_depth_under_budget() {
    let g = PaperGraph::G2Cora.generate_scaled(0.3, 9).unwrap();
    let params = MelopprParams {
        ppr: PprParams::new(0.85, 6, 20).unwrap(),
        stages: vec![3, 3],
        selection: SelectionStrategy::All,
        ..MelopprParams::paper_defaults()
    };
    let backend = Meloppr::new(&g, params).unwrap();
    // The hub: the highest-degree node has the fattest ball.
    let hub = (0..g.num_nodes() as NodeId)
        .max_by_key(|&v| g.degree(v))
        .unwrap();

    let unbudgeted = backend.query(&QueryRequest::new(hub)).unwrap();
    assert!(!unbudgeted.stats.memory_limited);
    let full_peak = unbudgeted.stats.peak_memory_bytes;
    assert!(full_peak > 0);

    let mut segmented = false;
    for divisor in [2usize, 3, 5] {
        let budget = (full_peak / divisor).max(1024);
        let limited = backend
            .query(&QueryRequest::new(hub).with_max_memory_bytes(budget))
            .unwrap();
        if limited.stats.memory_limited {
            continue; // the depth-0 floor: segmentation cannot absorb it
        }
        assert!(
            limited.stats.peak_memory_bytes <= budget,
            "divisor {divisor}: peak {} exceeds budget {budget}",
            limited.stats.peak_memory_bytes
        );
        if limited.stats.total_diffusions > unbudgeted.stats.total_diffusions {
            // Pieces ran: the ball really was split, yet the answer is
            // the full-depth one.
            segmented = true;
            assert_ranking_equiv(&limited.ranking, &unbudgeted.ranking, 1e-9);
        }
    }
    assert!(
        segmented,
        "budgets down to a fifth of the hub's peak never engaged segmentation"
    );
}

/// Strategy shared with `tests/properties.rs`: a connected-ish random
/// simple graph.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (5usize..60, any::<u64>()).prop_map(|(n, seed)| {
        let extra = n;
        generators::locality_preferential(n, (n - 1) + extra / 2, 0.5, n / 2 + 1, seed)
            .expect("valid generator parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ball codec round-trips: extract → compact → wire bytes →
    /// compact → full sub-graph, with every hop structure-preserving.
    #[test]
    fn ball_codec_roundtrips(
        g in arb_graph(),
        depth in 1u32..4,
        seed_idx in any::<prop::sample::Index>(),
    ) {
        let seed = seed_idx.index(g.num_nodes()) as NodeId;
        let ball = bfs_ball(&g, seed, depth).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        let compact = CompactBall::from_subgraph(&sub).expect("<=65536 nodes");

        // Compact → wire → compact is exact.
        let mut wire = Vec::new();
        encode_record(&compact, &mut wire);
        let decoded = decode_record(&wire).unwrap();
        prop_assert_eq!(&decoded, &compact);

        // Wire → full sub-graph reproduces the original extraction.
        let inflated = decoded.to_subgraph().unwrap();
        prop_assert_eq!(inflated.global_ids(), sub.global_ids());
        prop_assert_eq!(inflated.seed_local(), sub.seed_local());
        for u in 0..GraphView::num_nodes(&sub) as NodeId {
            prop_assert_eq!(
                GraphView::neighbors(&inflated, u),
                GraphView::neighbors(&sub, u)
            );
            prop_assert_eq!(
                GraphView::walk_degree(&inflated, u),
                GraphView::walk_degree(&sub, u)
            );
        }

        // Corrupt wire bytes produce typed errors, never panics.
        if !wire.is_empty() {
            let mut torn = wire.clone();
            torn.truncate(torn.len() - 1);
            prop_assert!(decode_record(&torn).is_err());
        }
    }
}
