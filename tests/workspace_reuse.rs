//! Workspace-reuse suite: a [`QueryWorkspace`] carried across queries —
//! and across *backends* — must never change results. Every backend's
//! `query_with` is run once with a fresh workspace and once with a
//! heavily reused one, and the outcomes (ranking **and** stats) must be
//! bit-identical. The batched paths (`query_batch`, [`BatchExecutor`])
//! must match a sequential `query` loop in request order.

use meloppr::backend::{ExactPower, LocalPpr, Meloppr, MonteCarlo};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::{
    BatchExecutor, CsrGraph, FpgaHybrid, HybridConfig, MelopprParams, PprBackend, PprParams,
    QueryOutcome, QueryRequest, QueryWorkspace, SelectionStrategy,
};

fn graph() -> CsrGraph {
    PaperGraph::G2Cora.generate_scaled(0.25, 17).unwrap()
}

fn ppr() -> PprParams {
    PprParams::new(0.85, 6, 15).unwrap()
}

fn staged() -> MelopprParams {
    MelopprParams {
        ppr: ppr(),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.1),
        ..MelopprParams::paper_defaults()
    }
}

/// All five backends over one graph, as trait objects.
fn all_backends(g: &CsrGraph) -> Vec<(&'static str, Box<dyn PprBackend + '_>)> {
    vec![
        ("exact-power", Box::new(ExactPower::new(g, ppr()).unwrap())),
        ("local-ppr", Box::new(LocalPpr::new(g, ppr()).unwrap())),
        (
            "monte-carlo",
            Box::new(MonteCarlo::new(g, ppr(), 2000, 42).unwrap()),
        ),
        ("meloppr", Box::new(Meloppr::new(g, staged()).unwrap())),
        (
            "fpga-hybrid",
            Box::new(FpgaHybrid::new(g, staged(), HybridConfig::default()).unwrap()),
        ),
    ]
}

#[test]
fn reused_workspace_is_bit_identical_across_all_five_backends() {
    let g = graph();
    let seeds = [0u32, 3, 9, 21];
    // Fresh-workspace reference outcomes per backend per seed.
    let mut reference: Vec<Vec<QueryOutcome>> = Vec::new();
    for (_, backend) in &all_backends(&g) {
        reference.push(
            seeds
                .iter()
                .map(|&s| {
                    backend
                        .query_with(&QueryRequest::new(s), &mut QueryWorkspace::new())
                        .unwrap()
                })
                .collect(),
        );
    }
    // One workspace dragged through every backend and every seed, twice.
    // Buffers arrive dirty from whatever query ran before; outcomes must
    // not care.
    let mut ws = QueryWorkspace::new();
    for round in 0..2 {
        for (b, (name, backend)) in all_backends(&g).iter().enumerate() {
            for (s, &seed) in seeds.iter().enumerate() {
                let outcome = backend
                    .query_with(&QueryRequest::new(seed), &mut ws)
                    .unwrap();
                assert_eq!(
                    outcome, reference[b][s],
                    "{name} seed {seed} round {round}: reused workspace changed the outcome"
                );
            }
        }
    }
}

#[test]
fn reused_workspace_handles_shrinking_and_growing_queries() {
    // Alternate big and small balls through one workspace: stale data
    // from a larger query must never leak into a smaller one.
    let g = graph();
    let backend = Meloppr::new(&g, staged()).unwrap();
    let mut ws = QueryWorkspace::new();
    let long = QueryRequest::new(5);
    let short = QueryRequest::new(5).with_length(2).with_k(3);
    let ref_long = backend
        .query_with(&long, &mut QueryWorkspace::new())
        .unwrap();
    let ref_short = backend
        .query_with(&short, &mut QueryWorkspace::new())
        .unwrap();
    for _ in 0..3 {
        assert_eq!(backend.query_with(&long, &mut ws).unwrap(), ref_long);
        assert_eq!(backend.query_with(&short, &mut ws).unwrap(), ref_short);
    }
}

#[test]
fn query_batch_matches_sequential_query_in_order() {
    let g = graph();
    let reqs: Vec<QueryRequest> = [0u32, 3, 9, 21, 2, 14]
        .into_iter()
        .map(QueryRequest::new)
        .collect();
    for (name, backend) in &all_backends(&g) {
        let sequential: Vec<QueryOutcome> =
            reqs.iter().map(|r| backend.query(r).unwrap()).collect();
        let batch = backend.query_batch(&reqs).unwrap();
        assert_eq!(batch, sequential, "{name}: query_batch diverged");
    }
}

#[test]
fn batch_executor_matches_sequential_query_at_any_worker_count() {
    let g = graph();
    let backend = Meloppr::new(&g, staged()).unwrap();
    let reqs: Vec<QueryRequest> = (0..16).map(QueryRequest::new).collect();
    let sequential: Vec<QueryOutcome> = reqs.iter().map(|r| backend.query(r).unwrap()).collect();
    for workers in [1usize, 2, 4, 8] {
        let batch = BatchExecutor::new(workers)
            .unwrap()
            .run(&backend, &reqs)
            .unwrap();
        assert_eq!(batch.outcomes, sequential, "workers = {workers}");
        assert_eq!(batch.stats.queries, reqs.len());
    }
}

#[test]
fn pooled_query_path_reuses_workspaces() {
    // The provided `query` checks workspaces out of the backend's pool:
    // after a burst of sequential queries exactly one workspace is idle,
    // and results stay stable while it is being reused.
    let g = graph();
    let backend = Meloppr::new(&g, staged()).unwrap();
    let req = QueryRequest::new(7);
    let first = backend.query(&req).unwrap();
    for _ in 0..5 {
        assert_eq!(backend.query(&req).unwrap(), first);
    }
    let pool = backend.workspace_pool().expect("meloppr keeps a pool");
    assert_eq!(
        pool.idle_len(),
        1,
        "sequential queries should share one workspace"
    );
}
