//! Serving front-end integration tests over loopback TCP: concurrent
//! clients get bit-identical results to direct execution, a saturated
//! bounded queue sheds with typed rejections (and shuts down without
//! deadlock), and deadline scheduling routes late-risk queries to
//! cheaper backends or fails them fast.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use meloppr::backend::LocalPpr;
use meloppr::core::backend::{BackendCaps, CostEstimate};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::server::{
    write_frame, FrameEvent, FrameReader, QuerySpec, RejectReason, Request, Response,
};
use meloppr::{
    BackendKind, BatchExecutor, CsrGraph, PprBackend, PprParams, PprServer, PrecisionClass,
    QueryOutcome, QueryRequest, QueryStats, QueryWorkspace, Router, ServerConfig,
};

fn graph() -> CsrGraph {
    PaperGraph::G2Cora.generate_scaled(0.3, 7).unwrap()
}

/// Shuts the server down when dropped, so a failing assertion inside a
/// serving scope unwinds cleanly instead of deadlocking on the scope's
/// implicit join of the accept loop.
struct ShutdownOnDrop<'a, 'r, 'g>(&'a meloppr::PprServer<'r, 'g>);

impl Drop for ShutdownOnDrop<'_, '_, '_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// A blocking protocol client for the tests.
struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        // Without this, Nagle can hold a request frame hostage to the
        // server's delayed ACK, skewing the deadline-timing scenarios.
        stream.set_nodelay(true).unwrap();
        Client {
            stream,
            reader: FrameReader::new(),
        }
    }

    fn send(&mut self, request: &Request) {
        write_frame(&mut self.stream, &request.encode()).unwrap();
    }

    fn recv(&mut self) -> Response {
        loop {
            match self.reader.read_event(&mut self.stream).unwrap() {
                FrameEvent::Frame(payload) => return Response::parse(&payload).unwrap(),
                FrameEvent::Idle => continue,
                FrameEvent::Eof => panic!("server closed the connection mid-conversation"),
            }
        }
    }
}

/// A stub solver with a configurable static estimate, actual service
/// time, and precision — the knobs deadline scheduling turns on.
struct Stub {
    kind: BackendKind,
    precision: f64,
    estimate_ns: f64,
    work: Duration,
}

impl PprBackend for Stub {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            kind: self.kind,
            exact: false,
            deterministic: true,
            accelerated: false,
            batch_aware: false,
        }
    }

    fn estimate(&self, _req: &QueryRequest) -> meloppr::core::Result<CostEstimate> {
        Ok(CostEstimate {
            latency_ns: self.estimate_ns,
            peak_memory_bytes: 1 << 10,
            expected_precision: self.precision,
        })
    }

    fn query_with(
        &self,
        req: &QueryRequest,
        _ws: &mut QueryWorkspace,
    ) -> meloppr::core::Result<QueryOutcome> {
        if !self.work.is_zero() {
            std::thread::sleep(self.work);
        }
        Ok(QueryOutcome {
            ranking: vec![(req.seed, 1.0)],
            stats: QueryStats {
                backend: self.kind,
                stages: Vec::new(),
                total_diffusions: 0,
                bfs_edges_scanned: 0,
                diffusion_edge_updates: 0,
                random_walk_steps: 0,
                nodes_touched: 0,
                peak_memory_bytes: 1 << 10,
                peak_task_memory_bytes: 1 << 10,
                aggregate_entries: 1,
                table_evictions: 0,
                memory_limited: false,
                precision_class: PrecisionClass::Exact64,
                latency_estimate_ns: None,
                host_latency_ns: None,
            },
        })
    }
}

/// N concurrent pipelined clients against a deterministic backend: every
/// response must be bit-identical to direct `BatchExecutor` execution of
/// the same requests.
#[test]
fn loopback_clients_match_direct_batch_execution() {
    const CLIENTS: u32 = 4;
    const PER_CLIENT: u32 = 8;

    let g = graph();
    let ppr = PprParams::new(0.85, 4, 10).unwrap();
    let router = Router::new().with_backend(Box::new(LocalPpr::new(&g, ppr).unwrap()));
    let server = PprServer::bind(
        &router,
        ServerConfig {
            workers: 3,
            queue_capacity: 64,
            default_deadline_ms: 10_000.0,
            poll_interval: Duration::from_millis(1),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();

    // The reference: the same requests served directly through a batch
    // executor on an independent instance of the same backend.
    let seed_of = |client: u32, i: u32| (client * 131 + i * 17) % g.num_nodes() as u32;
    let direct = LocalPpr::new(&g, ppr).unwrap();
    let mut reference = Vec::new();
    for client in 0..CLIENTS {
        let reqs: Vec<QueryRequest> = (0..PER_CLIENT)
            .map(|i| QueryRequest::new(seed_of(client, i)))
            .collect();
        let batch = BatchExecutor::new(2).unwrap().run(&direct, &reqs).unwrap();
        reference.push(batch.outcomes);
    }

    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        let _guard = ShutdownOnDrop(&server);
        let clients: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let reference = &reference[client as usize];
                scope.spawn(move || {
                    let mut conn = Client::connect(addr);
                    // Pipeline the whole batch, then collect out-of-order
                    // responses by id.
                    for i in 0..PER_CLIENT {
                        conn.send(&Request::Query(QuerySpec::new(
                            u64::from(i),
                            seed_of(client, i),
                        )));
                    }
                    let mut got = vec![None; PER_CLIENT as usize];
                    for _ in 0..PER_CLIENT {
                        match conn.recv() {
                            Response::Ranking {
                                id,
                                backend,
                                ranking,
                                ..
                            } => {
                                assert_eq!(backend, BackendKind::LocalPpr);
                                got[id as usize] = Some(ranking);
                            }
                            other => panic!("client {client}: unexpected {other:?}"),
                        }
                    }
                    for (i, ranking) in got.into_iter().enumerate() {
                        // Scores survive the text protocol bit-identically
                        // (shortest-roundtrip f64 formatting).
                        assert_eq!(
                            ranking.unwrap(),
                            reference[i].ranking,
                            "client {client} query {i} diverged from direct execution"
                        );
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        server.shutdown();
        serve.join().unwrap().unwrap();
    });

    let snapshot = server.telemetry();
    assert_eq!(snapshot.completed, u64::from(CLIENTS * PER_CLIENT));
    assert_eq!(snapshot.shed, 0);
    assert_eq!(snapshot.errors, 0);
}

/// A pipelined flood against a single slow worker: the bounded queue
/// hits its cap and never exceeds it, overflow is answered with typed
/// `queue-full` rejections, accepted work still meets its deadline, and
/// shutdown completes without deadlock.
#[test]
fn saturation_sheds_with_bounded_queue_and_clean_shutdown() {
    const QUEUE: usize = 4;
    const BURST: u64 = 60;
    const DEADLINE_MS: f64 = 5_000.0;

    let router = Router::new().with_backend(Box::new(Stub {
        kind: BackendKind::MonteCarlo,
        precision: 0.9,
        estimate_ns: 1e6,               // claims 1 ms
        work: Duration::from_millis(3), // actually 3 ms
    }));
    let server = PprServer::bind(
        &router,
        ServerConfig {
            workers: 1,
            queue_capacity: QUEUE,
            default_deadline_ms: DEADLINE_MS,
            poll_interval: Duration::from_millis(1),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        let _guard = ShutdownOnDrop(&server);
        let mut conn = Client::connect(addr);
        for id in 0..BURST {
            conn.send(&Request::Query(QuerySpec::new(id, id as u32)));
        }
        let (mut served, mut shed) = (0u64, 0u64);
        for _ in 0..BURST {
            match conn.recv() {
                Response::Ranking { .. } => served += 1,
                Response::Rejected { reason, .. } => {
                    assert_eq!(reason, RejectReason::QueueFull);
                    shed += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(served + shed, BURST);
        assert!(
            shed > 0,
            "burst of {BURST} into a queue of {QUEUE} never shed"
        );
        assert!(served > 0, "everything was shed");

        // SHUTDOWN over the protocol answers with final stats and winds
        // the server down; serve() returning is the no-deadlock proof.
        conn.send(&Request::Shutdown);
        match conn.recv() {
            Response::Stats(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        serve.join().unwrap().unwrap();
    });

    let snapshot = server.telemetry();
    assert_eq!(snapshot.shed, snapshot.shed.max(1));
    assert_eq!(snapshot.completed + snapshot.shed, BURST);
    // The queue really was bounded: its high-water mark sits exactly at
    // the configured cap, never beyond.
    assert_eq!(snapshot.queue_high_water, QUEUE);
    // Accepted requests stayed comfortably inside their deadline even at
    // p99 (bounded queue wait: at most QUEUE × service time).
    assert!(
        snapshot.p99_ms <= DEADLINE_MS,
        "p99 {} ms blew the {} ms deadline",
        snapshot.p99_ms,
        DEADLINE_MS
    );
    assert_eq!(snapshot.deadline_missed, 0);
}

/// Deadline scheduling: slack routes to the precise backend, late-risk
/// routes to the cheap one, hopeless fails fast (`deadline-unmeetable`),
/// and deadlines that expire in the queue come back `deadline-exceeded`.
#[test]
fn deadlines_route_degrade_and_fast_fail() {
    let router = Router::new()
        .with_backend(Box::new(Stub {
            kind: BackendKind::ExactPower,
            precision: 1.0,
            estimate_ns: 5e7, // 50 ms, precise
            work: Duration::from_millis(50),
        }))
        .with_backend(Box::new(Stub {
            kind: BackendKind::MonteCarlo,
            precision: 0.5,
            estimate_ns: 2e5, // 0.2 ms, cheap
            work: Duration::ZERO,
        }));
    let server = PprServer::bind(
        &router,
        ServerConfig {
            workers: 1,
            queue_capacity: 16,
            default_deadline_ms: 1_000.0,
            poll_interval: Duration::from_millis(1),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        let _guard = ShutdownOnDrop(&server);
        let mut conn = Client::connect(addr);

        // Plenty of slack: precision wins, the expensive backend serves.
        conn.send(&Request::Query(
            QuerySpec::new(1, 7).with_deadline_ms(500.0),
        ));
        match conn.recv() {
            Response::Ranking { id, backend, .. } => {
                assert_eq!(id, 1);
                assert_eq!(backend, BackendKind::ExactPower);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Late risk: 5 ms of slack excludes the 50 ms backend, so the
        // query degrades to the cheaper backend instead of missing.
        conn.send(&Request::Query(QuerySpec::new(2, 7).with_deadline_ms(5.0)));
        match conn.recv() {
            Response::Ranking { id, backend, .. } => {
                assert_eq!(id, 2);
                assert_eq!(backend, BackendKind::MonteCarlo);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Hopeless: no backend predicts finishing in 150 µs — typed
        // fast-fail, carrying the cheapest estimate (unless the deadline
        // already lapsed before admission ran, where no estimate exists).
        conn.send(&Request::Query(QuerySpec::new(3, 7).with_deadline_ms(0.15)));
        match conn.recv() {
            Response::Rejected {
                id,
                reason,
                predicted_us,
                ..
            } => {
                assert_eq!(id, 3);
                assert_eq!(reason, RejectReason::DeadlineUnmeetable);
                assert!(
                    predicted_us.is_none() || predicted_us == Some(200),
                    "unexpected prediction {predicted_us:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }

        // Queue expiry: a 50 ms job occupies the single worker, so a
        // 10 ms-deadline request admitted behind it expires while queued
        // and is answered with a typed `deadline-exceeded`. The pause
        // ensures the long job is already executing (not still queued,
        // where EDF would serve the short-deadline request first).
        conn.send(&Request::Query(
            QuerySpec::new(4, 7).with_deadline_ms(900.0),
        ));
        std::thread::sleep(Duration::from_millis(20));
        conn.send(&Request::Query(QuerySpec::new(5, 7).with_deadline_ms(10.0)));
        let mut outcomes = std::collections::BTreeMap::new();
        for _ in 0..2 {
            match conn.recv() {
                Response::Ranking { id, backend, .. } => {
                    outcomes.insert(id, format!("ok:{backend}"));
                }
                Response::Rejected { id, reason, .. } => {
                    outcomes.insert(id, format!("rejected:{reason}"));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(outcomes[&4], "ok:exact-power");
        assert_eq!(outcomes[&5], "rejected:deadline-exceeded");

        // Liveness and garbage handling while we're connected.
        conn.send(&Request::Ping);
        assert_eq!(conn.recv(), Response::Pong);
        write_frame(&mut conn.stream, "FROBNICATE the server").unwrap();
        match conn.recv() {
            Response::Error { id, .. } => assert_eq!(id, 0),
            other => panic!("unexpected {other:?}"),
        }
        // Hostile deadlines (inf / astronomical) must come back as typed
        // protocol errors — not a Duration panic in a connection thread.
        for hostile in ["deadline_ms=inf", "deadline_ms=1e25"] {
            write_frame(&mut conn.stream, &format!("QUERY seed=7 {hostile}")).unwrap();
            match conn.recv() {
                Response::Error { message, .. } => {
                    assert!(message.contains("out of range"), "unexpected {message:?}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        server.shutdown();
        serve.join().unwrap().unwrap();
    });

    let snapshot = server.telemetry();
    assert_eq!(snapshot.rejected_unmeetable, 1);
    assert!(snapshot.deadline_missed >= 1);
    assert_eq!(snapshot.errors, 3); // one garbage frame, two hostile deadlines
    let routed = |kind: BackendKind| {
        snapshot
            .routes
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    };
    assert_eq!(routed(BackendKind::ExactPower), 2);
    assert_eq!(routed(BackendKind::MonteCarlo), 1);
}

/// Shutdown while a pipelined burst is still queued: every admitted
/// request must still get its response before the connection closes —
/// queued residents are drained, not dropped.
#[test]
fn shutdown_drains_inflight_responses() {
    const BURST: u64 = 16;

    let router = Router::new().with_backend(Box::new(Stub {
        kind: BackendKind::MonteCarlo,
        precision: 0.9,
        estimate_ns: 1e6,
        work: Duration::from_millis(2),
    }));
    let server = PprServer::bind(
        &router,
        ServerConfig {
            workers: 1,
            queue_capacity: BURST as usize,
            default_deadline_ms: 5_000.0,
            poll_interval: Duration::from_millis(1),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        let _guard = ShutdownOnDrop(&server);
        let mut conn = Client::connect(addr);
        // Pipeline the burst and immediately ask for shutdown: the
        // SHUTDOWN frame is processed while most of the burst is still
        // queued behind the slow single worker.
        for id in 0..BURST {
            conn.send(&Request::Query(QuerySpec::new(id, id as u32)));
        }
        conn.send(&Request::Shutdown);
        let (mut outcomes, mut stats) = (0u64, 0u64);
        for _ in 0..=BURST {
            match conn.recv() {
                Response::Ranking { .. } | Response::Rejected { .. } => outcomes += 1,
                Response::Stats(_) => stats += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(outcomes, BURST, "admitted requests lost their responses");
        assert_eq!(stats, 1);
        serve.join().unwrap().unwrap();
    });
}

/// Mid-connection client failures: a peer that vanishes with responses
/// still owed and a peer that dies mid-frame are both counted as
/// aborted connections, their workers come back, and the server keeps
/// serving everyone else.
#[test]
fn client_failures_free_workers_and_count_aborts() {
    let router = Router::new().with_backend(Box::new(Stub {
        kind: BackendKind::MonteCarlo,
        precision: 0.9,
        estimate_ns: 1e6,
        work: Duration::from_millis(40),
    }));
    let server = PprServer::bind(
        &router,
        ServerConfig {
            workers: 1,
            queue_capacity: 16,
            default_deadline_ms: 10_000.0,
            poll_interval: Duration::from_millis(1),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        let _guard = ShutdownOnDrop(&server);

        // Disconnect with responses owed: pipeline a burst at the slow
        // single worker, give the server time to admit it, vanish. The
        // slow worker spaces the response writes out, so at least one
        // lands after the peer's RST and exposes the dead connection.
        {
            let mut doomed = Client::connect(addr);
            for id in 0..4 {
                doomed.send(&Request::Query(QuerySpec::new(id, 7)));
            }
            std::thread::sleep(Duration::from_millis(20));
        }

        // Die mid-frame: promise 64 payload bytes, deliver 10, close.
        {
            let mut torn = TcpStream::connect(addr).unwrap();
            torn.write_all(&64u32.to_be_bytes()).unwrap();
            torn.write_all(b"QUERY seed").unwrap();
            torn.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20));
        }

        // Both aborts surface asynchronously on their connection
        // threads; wait for the counters rather than racing them.
        let patience = std::time::Instant::now() + Duration::from_secs(10);
        while server.telemetry().aborted_connections < 2 {
            assert!(
                std::time::Instant::now() < patience,
                "client failures never counted: {:?}",
                server.telemetry()
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        // The worker pool survived both failures: a healthy client is
        // still served, behind the doomed burst it has to queue after.
        let mut conn = Client::connect(addr);
        conn.send(&Request::Ping);
        assert_eq!(conn.recv(), Response::Pong);
        conn.send(&Request::Query(QuerySpec::new(99, 3)));
        match conn.recv() {
            Response::Ranking { id, .. } => assert_eq!(id, 99),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
        serve.join().unwrap().unwrap();
    });

    let snapshot = server.telemetry();
    assert_eq!(snapshot.aborted_connections, 2);
    // Every admitted request of the vanished client still executed to
    // completion (into the void) — the worker was freed, not wedged.
    assert_eq!(snapshot.completed, 5);
    assert_eq!(snapshot.errors, 0);
}

/// Shutdown must unblock the accept loop even for a wildcard bind,
/// where the self-connect wake-up targets the loopback address.
#[test]
fn shutdown_wakes_wildcard_binds() {
    let router = Router::new().with_backend(Box::new(Stub {
        kind: BackendKind::MonteCarlo,
        precision: 0.9,
        estimate_ns: 1e6,
        work: Duration::ZERO,
    }));
    let server = PprServer::bind(&router, ServerConfig::default(), "0.0.0.0:0").unwrap();
    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        std::thread::sleep(Duration::from_millis(20));
        server.shutdown();
        serve.join().unwrap().unwrap();
    });
}
