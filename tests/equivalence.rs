//! Cross-crate equivalence tests: the decomposed engines must agree with
//! exact ground truth under full selection, across graph families and
//! parameterizations.

use meloppr::backend::{LocalPpr, MonteCarlo};
use meloppr::core::precision::precision_at_k;
use meloppr::graph::generators::{self, corpus::PaperGraph};
use meloppr::{
    exact_ppr, exact_top_k, MelopprEngine, MelopprParams, PprBackend, PprParams, QueryRequest,
    SelectionStrategy,
};

/// The exactness matrix: every stage split of every length on every graph
/// family must reproduce exact scores under full selection.
#[test]
fn meloppr_full_selection_is_exact_everywhere() {
    let graphs: Vec<(&str, meloppr::CsrGraph)> = vec![
        ("karate", generators::karate_club()),
        ("grid", generators::grid(9, 7).unwrap()),
        ("ba", generators::barabasi_albert(300, 3, 5).unwrap()),
        ("ws", generators::watts_strogatz(200, 6, 0.2, 9).unwrap()),
        (
            "citeseer-ish",
            PaperGraph::G1Citeseer.generate_scaled(0.1, 3).unwrap(),
        ),
    ];
    for (name, g) in &graphs {
        for (length, stages) in [(4usize, vec![2, 2]), (5, vec![2, 3]), (6, vec![3, 3])] {
            let ppr = PprParams::new(0.85, length, 15).unwrap();
            let params = MelopprParams {
                ppr,
                stages,
                selection: SelectionStrategy::All,
                ..MelopprParams::paper_defaults()
            };
            let engine = MelopprEngine::new(g, params).unwrap();
            let outcome = engine.query(0).unwrap();
            let exact = exact_ppr(g, 0, &ppr).unwrap();
            for &(v, s) in &outcome.ranking {
                let want = exact.accumulated[v as usize];
                assert!(
                    (s - want).abs() < 1e-9,
                    "{name} L={length}: node {v} got {s}, want {want}"
                );
            }
        }
    }
}

#[test]
fn local_ppr_equals_exact_on_every_family() {
    let graphs = [
        generators::karate_club(),
        generators::binary_tree(6).unwrap(),
        generators::erdos_renyi_gnm(400, 1200, 8).unwrap(),
        PaperGraph::G2Cora.generate_scaled(0.1, 4).unwrap(),
    ];
    for (i, g) in graphs.iter().enumerate() {
        let params = PprParams::new(0.85, 5, 20).unwrap();
        let baseline = LocalPpr::new(g, params)
            .unwrap()
            .query(&QueryRequest::new(1))
            .unwrap();
        let exact = exact_ppr(g, 1, &params).unwrap();
        for &(v, s) in &baseline.ranking {
            assert!(
                (s - exact.accumulated[v as usize]).abs() < 1e-12,
                "graph {i}: node {v}"
            );
        }
    }
}

#[test]
fn hybrid_fpga_tracks_float_engine() {
    let g = PaperGraph::G1Citeseer.generate_scaled(0.2, 6).unwrap();
    let params = MelopprParams {
        ppr: PprParams::new(0.85, 6, 50).unwrap(),
        stages: vec![3, 3],
        selection: SelectionStrategy::TopFraction(0.1),
        ..MelopprParams::paper_defaults()
    };
    let float_engine = MelopprEngine::new(&g, params.clone()).unwrap();
    let hybrid = meloppr::FpgaHybrid::new(&g, params, meloppr::HybridConfig::default()).unwrap();
    for seed in [2u32, 77, 300] {
        let float_rank = float_engine.query(seed).unwrap().ranking;
        let int_rank = hybrid.query(&QueryRequest::new(seed)).unwrap().ranking;
        let agreement = precision_at_k(&int_rank, &float_rank, 50);
        assert!(
            agreement >= 0.9,
            "seed {seed}: fixed-point ranking diverged ({agreement})"
        );
    }
}

#[test]
fn monte_carlo_agrees_with_diffusion_ground_truth() {
    let g = generators::karate_club();
    let params = PprParams::new(0.85, 6, 8).unwrap();
    let exact = exact_top_k(&g, 33, &params).unwrap();
    let mc = MonteCarlo::new(&g, params, 50_000, 11)
        .unwrap()
        .query(&QueryRequest::new(33))
        .unwrap();
    let prec = precision_at_k(&mc.ranking, &exact, 8);
    assert!(prec >= 0.7, "MC estimator too far off: {prec}");
}

#[test]
fn facade_reexports_are_usable() {
    // The facade crate must expose a workable one-stop API.
    let g = meloppr::GraphBuilder::new(4)
        .edge(0, 1)
        .edge(1, 2)
        .edge(2, 3)
        .build()
        .unwrap();
    let params = MelopprParams::two_stage(
        PprParams::new(0.5, 2, 2).unwrap(),
        1,
        1,
        SelectionStrategy::All,
    )
    .unwrap();
    let outcome = MelopprEngine::new(&g, params).unwrap().query(0).unwrap();
    assert_eq!(outcome.ranking.len(), 2);
}
