//! Chaos tests: the loopback serving stack under scripted, deterministic
//! fault schedules (`meloppr::core::failpoint`, `--features failpoints`).
//!
//! Each scenario asserts the failure-model contract end to end: no
//! deadlock (every scope joins), every admitted request gets a typed
//! response, unfaulted queries stay bit-identical to clean execution,
//! circuit breakers trip and re-close, and the robustness counters
//! match the fault schedule *exactly* — not approximately.
//!
//! The failpoint registry is process-global, so every test serializes
//! on [`GATE`] and clears the failpoints it configured before
//! releasing it.

#![cfg(feature = "failpoints")]

use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use meloppr::backend::{persist, Meloppr};
use meloppr::core::backend::{BackendCaps, BreakerState, CostEstimate};
use meloppr::core::failpoint::{self, FaultAction, FaultSpec};
use meloppr::graph::generators::corpus::PaperGraph;
use meloppr::server::{write_frame, FrameEvent, FrameReader, QuerySpec, Request, Response};
use meloppr::{
    build_index, BackendKind, BallIndex, CacheBudget, ConcurrentSubgraphCache, CsrGraph,
    MelopprParams, PprBackend, PprParams, PprServer, PrecisionClass, QueryOutcome, QueryRequest,
    QueryStats, QueryWorkspace, Router, ServerConfig,
};

/// Serializes chaos tests: the failpoint registry (and its counters)
/// are process-global, so concurrent schedules would corrupt each
/// other's exact-count assertions.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    // A failed assertion in one scenario must not poison the others.
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn graph() -> CsrGraph {
    PaperGraph::G2Cora.generate_scaled(0.3, 7).unwrap()
}

fn meloppr_params() -> MelopprParams {
    MelopprParams {
        ppr: PprParams::new(0.85, 6, 20).unwrap(),
        stages: vec![3, 3],
        ..MelopprParams::paper_defaults()
    }
}

/// Shuts the server down when dropped, so a failing assertion inside a
/// serving scope unwinds cleanly instead of deadlocking on the scope's
/// implicit join of the accept loop.
struct ShutdownOnDrop<'a, 'r, 'g>(&'a PprServer<'r, 'g>);

impl Drop for ShutdownOnDrop<'_, '_, '_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// A blocking protocol client for the tests.
struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            stream,
            reader: FrameReader::new(),
        }
    }

    fn send(&mut self, request: &Request) {
        write_frame(&mut self.stream, &request.encode()).unwrap();
    }

    fn recv(&mut self) -> Response {
        loop {
            match self.reader.read_event(&mut self.stream).unwrap() {
                FrameEvent::Frame(payload) => return Response::parse(&payload).unwrap(),
                FrameEvent::Idle => continue,
                FrameEvent::Eof => panic!("server closed the connection mid-conversation"),
            }
        }
    }
}

/// A deterministic stub solver with configurable kind, estimate, and
/// precision — lets the breaker scenario pin routing on cost alone.
struct Stub {
    kind: BackendKind,
    estimate_ns: f64,
}

impl PprBackend for Stub {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            kind: self.kind,
            exact: false,
            deterministic: true,
            accelerated: false,
            batch_aware: false,
        }
    }

    fn estimate(&self, _req: &QueryRequest) -> meloppr::core::Result<CostEstimate> {
        Ok(CostEstimate {
            latency_ns: self.estimate_ns,
            peak_memory_bytes: 1 << 10,
            expected_precision: 0.9,
        })
    }

    fn query_with(
        &self,
        req: &QueryRequest,
        _ws: &mut QueryWorkspace,
    ) -> meloppr::core::Result<QueryOutcome> {
        Ok(QueryOutcome {
            ranking: vec![(req.seed, 1.0)],
            stats: QueryStats {
                backend: self.kind,
                stages: Vec::new(),
                total_diffusions: 0,
                bfs_edges_scanned: 0,
                diffusion_edge_updates: 0,
                random_walk_steps: 0,
                nodes_touched: 0,
                peak_memory_bytes: 1 << 10,
                peak_task_memory_bytes: 1 << 10,
                aggregate_entries: 1,
                table_evictions: 0,
                memory_limited: false,
                precision_class: PrecisionClass::Exact64,
                latency_estimate_ns: None,
                host_latency_ns: None,
            },
        })
    }
}

fn serving_config(queue: usize) -> ServerConfig {
    ServerConfig {
        workers: 1,
        queue_capacity: queue,
        default_deadline_ms: 30_000.0,
        poll_interval: Duration::from_millis(1),
        ..ServerConfig::default()
    }
}

/// Cache-extraction failures mid-burst: every faulted query comes back
/// as a typed `ERR`, every unfaulted query is bit-identical to clean
/// execution, the error count matches the schedule exactly, the sole
/// backend's breaker trips once and re-closes, and shutdown drains
/// clean.
#[test]
fn extraction_failures_mid_burst_yield_exact_typed_errors() {
    let _gate = gate();
    const BURST: u64 = 12;
    const FAULTS: u64 = 3;

    let g = graph();
    let seed_of = |id: u64| (id * 13 % g.num_nodes() as u64) as u32;

    // Clean reference: the same seeds through an identical backend,
    // before any failpoint is armed.
    let reference_backend = Meloppr::new(&g, meloppr_params())
        .unwrap()
        .with_shared_cache(Arc::new(ConcurrentSubgraphCache::with_budget(
            CacheBudget::entries(256),
        )));
    let reference: Vec<Vec<(u32, f64)>> = (0..BURST)
        .map(|id| {
            reference_backend
                .query(&QueryRequest::new(seed_of(id)))
                .unwrap()
                .ranking
        })
        .collect();

    let backend = Meloppr::new(&g, meloppr_params())
        .unwrap()
        .with_shared_cache(Arc::new(ConcurrentSubgraphCache::with_budget(
            CacheBudget::entries(256),
        )));
    let router = Router::new().with_backend(Box::new(backend));
    let server = PprServer::bind(&router, serving_config(BURST as usize), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Schedule: let the first few extractions through, then fail the
    // next FAULTS shared-cache extractions mid-burst.
    failpoint::set_seed(42);
    failpoint::configure(
        "cache.extract",
        FaultSpec::new(FaultAction::Error).skip(4).times(FAULTS),
    );

    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        let _guard = ShutdownOnDrop(&server);
        let mut conn = Client::connect(addr);
        for id in 0..BURST {
            conn.send(&Request::Query(QuerySpec::new(id, seed_of(id))));
        }
        let mut errors = 0u64;
        let mut rankings: Vec<Option<Vec<(u32, f64)>>> = vec![None; BURST as usize];
        for _ in 0..BURST {
            match conn.recv() {
                Response::Ranking { id, ranking, .. } => rankings[id as usize] = Some(ranking),
                Response::Error { message, .. } => {
                    assert!(
                        message.contains("cache.extract"),
                        "error is not the injected fault: {message:?}"
                    );
                    errors += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Counters match the schedule exactly: each fire kills exactly
        // one query (the error propagates immediately), no more fires
        // than the schedule allows.
        assert_eq!(errors, FAULTS, "typed errors != scheduled faults");
        assert_eq!(failpoint::fired("cache.extract"), FAULTS);
        // Every unfaulted query is bit-identical to clean execution.
        for (id, ranking) in rankings.into_iter().enumerate() {
            if let Some(ranking) = ranking {
                assert_eq!(ranking, reference[id], "query {id} diverged under chaos");
            }
        }
        conn.send(&Request::Shutdown);
        match conn.recv() {
            Response::Stats(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        serve.join().unwrap().unwrap();
    });
    failpoint::clear("cache.extract");

    let snap = server.telemetry();
    assert_eq!(snap.errors, FAULTS);
    assert_eq!(snap.completed, BURST - FAULTS);
    assert_eq!(snap.worker_panics, 0);
    // A sole backend has nowhere to fail over to: errors surface.
    assert_eq!(snap.failovers, 0);
    // The three consecutive errors tripped the breaker exactly once
    // (EWMA 0 → 0.5 → 0.75 > 0.6); the forced-through successes after
    // the schedule ran dry re-closed it.
    assert_eq!(snap.breakers.len(), 1);
    let (kind, state, trips) = snap.breakers[0];
    assert_eq!(kind, BackendKind::Meloppr);
    assert_eq!(state, BreakerState::Closed, "breaker never re-closed");
    assert_eq!(trips, 1);
}

/// A panic storm in ball diffusion: `catch_unwind` isolates every
/// panic to its query (typed `ERR internal`, `worker_panics` counts
/// the schedule exactly), the worker pool and caches survive, panics
/// are never failed over or charged to the breaker, and unfaulted
/// queries stay bit-identical.
#[test]
fn panic_storm_is_isolated_and_counted_exactly() {
    let _gate = gate();
    const BURST: u64 = 10;
    const PANICS: u64 = 4;

    let g = graph();
    let seed_of = |id: u64| (id * 29 % g.num_nodes() as u64) as u32;

    let reference_backend = Meloppr::new(&g, meloppr_params()).unwrap();
    let reference: Vec<Vec<(u32, f64)>> = (0..BURST)
        .map(|id| {
            reference_backend
                .query(&QueryRequest::new(seed_of(id)))
                .unwrap()
                .ranking
        })
        .collect();

    let backend = Meloppr::new(&g, meloppr_params()).unwrap();
    let router = Router::new().with_backend(Box::new(backend));
    let server = PprServer::bind(&router, serving_config(BURST as usize), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    failpoint::set_seed(7);
    failpoint::configure(
        "ball.diffuse",
        FaultSpec::new(FaultAction::Panic).skip(3).times(PANICS),
    );
    // Keep the storm off stderr; restored before the gate is released.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        let _guard = ShutdownOnDrop(&server);
        let mut conn = Client::connect(addr);
        for id in 0..BURST {
            conn.send(&Request::Query(QuerySpec::new(id, seed_of(id))));
        }
        let mut panicked = 0u64;
        let mut rankings: Vec<Option<Vec<(u32, f64)>>> = vec![None; BURST as usize];
        for _ in 0..BURST {
            match conn.recv() {
                Response::Ranking { id, ranking, .. } => rankings[id as usize] = Some(ranking),
                Response::Error { message, .. } => {
                    assert!(
                        message.contains("panicked") && message.contains("ball.diffuse"),
                        "error is not the injected panic: {message:?}"
                    );
                    panicked += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(panicked, PANICS, "typed panic errors != scheduled panics");
        assert_eq!(failpoint::fired("ball.diffuse"), PANICS);
        for (id, ranking) in rankings.into_iter().enumerate() {
            if let Some(ranking) = ranking {
                assert_eq!(
                    ranking, reference[id],
                    "query {id} diverged after the panic storm"
                );
            }
        }
        // The pool survived the storm: the same connection keeps being
        // served, and shutdown still drains clean.
        conn.send(&Request::Ping);
        assert_eq!(conn.recv(), Response::Pong);
        conn.send(&Request::Shutdown);
        match conn.recv() {
            Response::Stats(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        serve.join().unwrap().unwrap();
    });
    std::panic::set_hook(default_hook);
    failpoint::clear("ball.diffuse");

    let snap = server.telemetry();
    assert_eq!(snap.worker_panics, PANICS, "worker_panics != schedule");
    assert_eq!(snap.errors, PANICS);
    assert_eq!(snap.completed, BURST - PANICS);
    // Panics are a code bug, not backend weather: never retried on
    // another backend, never charged to the circuit breaker.
    assert_eq!(snap.failovers, 0);
    let (_, state, trips) = snap.breakers[0];
    assert_eq!(state, BreakerState::Closed);
    assert_eq!(trips, 0);
}

/// A persistently failing backend: the first errors fail over to the
/// healthy backend (bounded, counted), the error-rate EWMA trips the
/// breaker open so later queries route around the sick backend without
/// burning an attempt, the `STATS` frame carries the breaker state over
/// the wire, and once the fault clears a half-open probe re-closes it.
#[test]
fn tripped_backend_fails_over_then_probe_recloses() {
    let _gate = gate();
    const BURST: u64 = 6;
    const COOLDOWN: Duration = Duration::from_millis(300);

    // Equal precision, so selection is decided by cost alone: the
    // cheap (sick) backend wins while its breaker allows it.
    let router = Router::new()
        .with_backend(Box::new(Stub {
            kind: BackendKind::Meloppr,
            estimate_ns: 1e5,
        }))
        .with_backend(Box::new(Stub {
            kind: BackendKind::LocalPpr,
            estimate_ns: 1e6,
        }))
        .with_breaker_cooldown(COOLDOWN);
    let server = PprServer::bind(&router, serving_config(16), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    failpoint::set_seed(11);
    // Every query the sick backend executes fails, until cleared.
    failpoint::configure("backend.query.meloppr", FaultSpec::new(FaultAction::Error));

    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        let _guard = ShutdownOnDrop(&server);
        let mut conn = Client::connect(addr);
        for id in 0..BURST {
            conn.send(&Request::Query(QuerySpec::new(id, id as u32)));
            // Despite the sick preferred backend, EVERY query succeeds:
            // failover while the breaker is closed, direct routing to
            // the healthy backend once it is open.
            match conn.recv() {
                Response::Ranking { backend, .. } => assert_eq!(backend, BackendKind::LocalPpr),
                other => panic!("unexpected {other:?}"),
            }
        }

        // The breaker state travels the wire: STATS reports the sick
        // backend open with exactly one trip.
        conn.send(&Request::Stats);
        let mid = match conn.recv() {
            Response::Stats(rendered) => {
                meloppr::server::TelemetrySnapshot::parse_compact(&rendered).unwrap()
            }
            other => panic!("unexpected {other:?}"),
        };
        let breaker_of = |snap: &meloppr::server::TelemetrySnapshot, kind: BackendKind| {
            snap.breakers
                .iter()
                .find(|(k, _, _)| *k == kind)
                .copied()
                .unwrap_or_else(|| panic!("no breaker for {kind} in {:?}", snap.breakers))
        };
        // Exactly the schedule: query 1 errors (EWMA 0.5) and fails
        // over; query 2 errors (EWMA 0.75 > 0.6), trips the breaker,
        // and fails over; queries 3.. route directly to the healthy
        // backend — two failovers total, one trip.
        assert_eq!(mid.failovers, 2, "failovers != schedule");
        let (_, state, trips) = breaker_of(&mid, BackendKind::Meloppr);
        assert_eq!(state, BreakerState::Open, "sick backend never tripped");
        assert_eq!(trips, 1);
        let (_, healthy_state, healthy_trips) = breaker_of(&mid, BackendKind::LocalPpr);
        assert_eq!(healthy_state, BreakerState::Closed);
        assert_eq!(healthy_trips, 0);

        // Heal the backend and wait out the cooldown: the next query is
        // the half-open probe, succeeds, and re-closes the breaker.
        failpoint::clear("backend.query.meloppr");
        std::thread::sleep(COOLDOWN + Duration::from_millis(50));
        conn.send(&Request::Query(QuerySpec::new(99, 3)));
        match conn.recv() {
            Response::Ranking { id, backend, .. } => {
                assert_eq!(id, 99);
                assert_eq!(
                    backend,
                    BackendKind::Meloppr,
                    "probe skipped the healed backend"
                );
            }
            other => panic!("unexpected {other:?}"),
        }

        conn.send(&Request::Shutdown);
        match conn.recv() {
            Response::Stats(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        serve.join().unwrap().unwrap();
    });

    let snap = server.telemetry();
    assert_eq!(snap.completed, BURST + 1);
    assert_eq!(snap.errors, 0, "a client saw an error despite failover");
    assert_eq!(snap.failovers, 2);
    let sick = snap
        .breakers
        .iter()
        .find(|(k, _, _)| *k == BackendKind::Meloppr)
        .copied()
        .unwrap();
    assert_eq!(sick.1, BreakerState::Closed, "probe never re-closed");
    assert_eq!(sick.2, 1, "breaker tripped more than the schedule");
}

/// Cold-tier read failures mid-burst: the ball index is an accelerator,
/// never a correctness dependency. A scripted `index.read` fault makes
/// the cold tier fail for a stretch of the burst — every affected
/// lookup silently falls back to live BFS, every ranking stays
/// bit-identical to clean execution, no query errors, and the
/// consumer's `cold_fallbacks` counter records at least the scheduled
/// fires (plus any lookups the index legitimately cannot serve).
#[test]
fn cold_tier_read_failures_fall_back_to_bfs_bit_identically() {
    let _gate = gate();
    const BURST: u64 = 16;
    const FAULTS: u64 = 5;

    let g = graph();
    let seed_of = |id: u64| (id * 31 % g.num_nodes() as u64) as u32;
    let path = std::env::temp_dir().join(format!("meloppr-chaos-ballidx-{}", std::process::id()));
    // Index depth matches the stage depth, so every RAM miss is
    // cold-servable and the fault schedule decides which ones fall back.
    build_index(&g, 3, &path).unwrap();

    // Clean reference: identical backend, RAM-only cache, no faults.
    let reference_backend = Meloppr::new(&g, meloppr_params())
        .unwrap()
        .with_shared_cache(Arc::new(ConcurrentSubgraphCache::with_budget(
            CacheBudget::entries(256),
        )));
    let reference: Vec<Vec<(u32, f64)>> = (0..BURST)
        .map(|id| {
            reference_backend
                .query(&QueryRequest::new(seed_of(id)))
                .unwrap()
                .ranking
        })
        .collect();

    let index = Arc::new(BallIndex::open(&path).unwrap());
    let backend = Meloppr::new(&g, meloppr_params())
        .unwrap()
        .with_shared_cache(Arc::new(
            ConcurrentSubgraphCache::with_budget(CacheBudget::entries(256)).with_cold_tier(index),
        ));

    // Let the first few cold reads through, then fail the next FAULTS.
    failpoint::set_seed(23);
    failpoint::configure(
        "index.read",
        FaultSpec::new(FaultAction::Error).skip(3).times(FAULTS),
    );

    for id in 0..BURST {
        let outcome = backend
            .query(&QueryRequest::new(seed_of(id)))
            .expect("a cold-tier fault must never surface as a query error");
        assert_eq!(
            outcome.ranking, reference[id as usize],
            "query {id} diverged under cold-tier faults"
        );
    }
    assert_eq!(failpoint::fired("index.read"), FAULTS, "schedule not spent");
    failpoint::clear("index.read");

    let stats = backend
        .cache_consumer()
        .expect("shared mode has a consumer")
        .stats();
    assert!(
        stats.cold_fallbacks >= FAULTS,
        "every scheduled fault must be a counted BFS fallback \
         (cold_fallbacks {} < {FAULTS})",
        stats.cold_fallbacks
    );
    assert!(
        stats.cold_hits > 0,
        "unfaulted cold reads must still serve from the index"
    );
    let _ = std::fs::remove_file(&path);
}

/// Calibration-state durability under truncation and injected I/O
/// faults: a truncated file warns and boots cold (never panics, never
/// blocks startup), and a scripted `persist.io` fault surfaces as a
/// typed `io::Error` from save.
#[test]
fn truncated_calibration_file_boots_cold() {
    let _gate = gate();
    let path = std::env::temp_dir().join(format!("meloppr-chaos-state-{}", std::process::id()));

    // A warm router with real calibration history.
    let warm = Router::new()
        .with_backend(Box::new(Stub {
            kind: BackendKind::LocalPpr,
            estimate_ns: 1e6,
        }))
        .with_self_calibration(true);
    for _ in 0..3 {
        warm.observe(0, 2_000.0, 1_000.0);
    }
    persist::save_state(&warm, &path).unwrap();

    // Round trip works while the file is intact.
    let intact = Router::new()
        .with_backend(Box::new(Stub {
            kind: BackendKind::LocalPpr,
            estimate_ns: 1e6,
        }))
        .with_self_calibration(true);
    assert!(persist::load_state(&intact, &path).unwrap());
    assert_eq!(intact.calibration_ratio(0).1, 3);

    // Truncate mid-record: the CRC/length footer catches it, load warns
    // and boots cold instead of applying garbage.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();
    let cold = Router::new()
        .with_backend(Box::new(Stub {
            kind: BackendKind::LocalPpr,
            estimate_ns: 1e6,
        }))
        .with_self_calibration(true);
    assert!(
        !persist::load_state(&cold, &path).unwrap(),
        "truncated state file was applied"
    );
    assert_eq!(
        cold.calibration_ratio(0),
        (1.0, 0),
        "cold boot still absorbed state"
    );

    // A scripted fault at the state-file seam is a typed I/O error, for
    // both directions.
    failpoint::set_seed(3);
    failpoint::configure("persist.io", FaultSpec::new(FaultAction::Error).times(2));
    let save_err = persist::save_state(&warm, &path).unwrap_err();
    assert!(
        save_err.to_string().contains("persist.io"),
        "unexpected save error {save_err:?}"
    );
    let load_err = persist::load_state(&cold, &path).unwrap_err();
    assert!(
        load_err.to_string().contains("persist.io"),
        "unexpected load error {load_err:?}"
    );
    assert_eq!(failpoint::fired("persist.io"), 2);
    failpoint::clear("persist.io");

    std::fs::remove_file(&path).unwrap();
}

/// The two protocol-level seams. A `frame.parse` fault refuses the
/// frame as a typed `ERR` (id 0, the frame never became a request)
/// without poisoning the connection; a bare `backend.query` fault —
/// the kind-independent seam the router checks ahead of
/// `backend.query.<kind>` — fails exactly one routed attempt. The same
/// connection then completes a clean query end to end.
#[test]
fn frame_and_routing_seams_fire_then_recover() {
    let _gate = gate();

    let g = graph();
    let backend = Meloppr::new(&g, meloppr_params()).unwrap();
    let router = Router::new().with_backend(Box::new(backend));
    let server = PprServer::bind(&router, serving_config(8), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    failpoint::set_seed(11);
    failpoint::configure("frame.parse", FaultSpec::new(FaultAction::Error).times(1));
    failpoint::configure("backend.query", FaultSpec::new(FaultAction::Error).times(1));

    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve());
        let _guard = ShutdownOnDrop(&server);
        let mut conn = Client::connect(addr);

        // First frame dies at the parse seam: ERR with id 0 (no request
        // was ever decoded), connection survives.
        conn.send(&Request::Query(QuerySpec::new(7, 0)));
        match conn.recv() {
            Response::Error { id, message } => {
                assert_eq!(id, 0, "parse-refused frames answer with id 0");
                assert!(
                    message.contains("frame.parse"),
                    "error is not the injected fault: {message:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }

        // Second query reaches the router and dies at the bare seam.
        conn.send(&Request::Query(QuerySpec::new(8, 0)));
        match conn.recv() {
            Response::Error { id, message } => {
                assert_eq!(id, 8);
                assert!(
                    message.contains("backend.query"),
                    "error is not the injected fault: {message:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }

        // Both schedules are spent: a clean query completes on the same
        // connection.
        conn.send(&Request::Query(QuerySpec::new(9, 0)));
        match conn.recv() {
            Response::Ranking { id, ranking, .. } => {
                assert_eq!(id, 9);
                assert!(!ranking.is_empty(), "clean query returned no ranking");
            }
            other => panic!("unexpected {other:?}"),
        }

        assert_eq!(failpoint::fired("frame.parse"), 1);
        assert_eq!(failpoint::fired("backend.query"), 1);

        conn.send(&Request::Shutdown);
        match conn.recv() {
            Response::Stats(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        serve.join().unwrap().unwrap();
    });
    failpoint::clear("frame.parse");
    failpoint::clear("backend.query");

    let snap = server.telemetry();
    assert_eq!(snap.errors, 2, "one parse refusal + one routed failure");
    assert_eq!(snap.worker_panics, 0);
}
